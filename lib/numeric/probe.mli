(** Work counters for the hot paths, kept in per-domain accumulators.

    Counting is {e always on}: every bump is a plain mutable-field
    increment on the calling domain's private record, which costs a
    {!Domain.DLS} read and an integer store — noise next to the
    hashtable probe or float kernel it sits beside.  Nothing is shared
    between domains while work is running.

    {2 Merging and determinism}

    Worker domains are short-lived ({!Pool} spawns them per region), so
    each worker {!drain_local}s its record into a global accumulator
    just before it exits.  Integer addition commutes: the merged totals
    are independent of worker scheduling and join order.  The pure work
    counters ([sigma_evals], [dpf_steps], [window_evals], ...) and the
    top-level contribution {e lookup} count (hits + misses) are
    invariant across pool sizes; the hit/miss splits vary with cache
    warmth and worker placement because the memo tables are per-domain,
    and the F-memo counts vary entirely (the Series kernel only runs on
    a contribution-cache miss).

    Counters are process-global, not per-run: call {!reset} before a
    run you want to attribute counts to.  [Batsched_obs.Report] renders
    them; the bench harness snapshots them into its [--json] rows. *)

type t = {
  mutable sigma_evals : int;      (** RV sigma evaluations *)
  mutable fmemo_hits : int;       (** Series F-memo table hits *)
  mutable fmemo_misses : int;     (** Series F-memo table misses *)
  mutable contrib_hits : int;     (** per-interval contribution cache hits *)
  mutable contrib_misses : int;   (** per-interval contribution cache misses *)
  mutable dpf_steps : int;        (** CalculateDPF upgrade-loop steps *)
  mutable window_evals : int;     (** windows evaluated (choose + cost) *)
  mutable choose_calls : int;     (** [Choose.choose_design_points] calls *)
  mutable iterations : int;       (** outer iterations of the main loop *)
  mutable anneal_accepted : int;  (** annealing moves accepted *)
  mutable anneal_rejected : int;  (** annealing moves rejected *)
  mutable anneal_noops : int;     (** no-op repoints skipped without evaluation *)
  mutable delta_swaps : int;      (** delta-evaluator swap candidates costed *)
  mutable delta_repoints : int;   (** delta-evaluator repoint candidates costed *)
  mutable delta_commits : int;    (** delta-evaluator moves committed *)
  mutable delta_discards : int;   (** delta-evaluator moves discarded *)
  mutable delta_terms : int;      (** per-position contribution terms recomputed *)
  mutable delta_full_evals : int; (** delta fallbacks to a full model evaluation *)
  mutable batch_evals : int;      (** [Sigma_batch] population sweeps *)
  mutable batch_candidates : int; (** candidate schedules batch-evaluated *)
  mutable batch_fallbacks : int;  (** batch candidates costed without a kernel *)
  mutable delta_ck_advances : int;(** checkpointed-stepper intervals integrated *)
  mutable delta_ck_restores : int;(** checkpoint restores in the delta evaluator *)
  mutable fcache_evictions : int; (** Fcache generation flips (half-table expiries) *)
  mutable pool_regions : int;     (** parallel regions actually fanned out *)
  mutable pool_tasks : int;       (** items mapped through [Pool.map_array] *)
  mutable pool_steals : int;      (** chunks stolen between pool workers *)
  mutable named : (string * int) list;
  (** Open-keyed counters for populations too dynamic for a fixed
      field — e.g. ["delta_full_evals/<model>"] attributing fallbacks
      per model name.  Bump via {!bump_named}; merged by key in
      {!add}. *)
}

val local : unit -> t
(** The calling domain's accumulator.  Bump its fields directly. *)

val zero : unit -> t
(** A fresh all-zero record. *)

val add : into:t -> t -> unit
(** [add ~into c] adds every field of [c] into [into]. *)

val clear : t -> unit
(** Zero every field in place. *)

val drain_local : unit -> unit
(** Merge the calling domain's accumulator into the global totals and
    zero it.  Called by [Pool] workers before they exit; harmless to
    call at any other time. *)

val totals : unit -> t
(** Global totals: everything drained so far plus the calling domain's
    live accumulator (which is left untouched). *)

val reset : unit -> unit
(** Zero the drained totals and the calling domain's accumulator. *)

val fields : (string * (t -> int)) list
(** Stable (name, getter) list driving reports and JSON dumps, in
    declaration order.  Named counters are not included; render them
    via {!named_counts}. *)

val bump_named : t -> string -> int -> unit
(** [bump_named c name v] adds [v] under [name] in [c]'s named
    counters, creating the key on first use. *)

val named_counts : t -> (string * int) list
(** The named counters sorted by key (the assoc list itself carries
    keys in first-bump order, which is not stable across pool
    schedules). *)

(** {2 Distribution observations}

    Counters summarize totals; some hot paths additionally want value
    {e distributions} (Fcache probe lengths, delta commit batch
    sizes).  They report through this hook, which the observability
    layer ([Batsched_obs.Histogram]) installs — keeping this library
    free of an obs dependency.  Sites must guard with [!observing]
    before calling {!observe}, so the disabled cost is one load and a
    branch (no float boxing, no call). *)

val observing : bool ref
(** Whether an observer is installed.  Read, never write. *)

val observe : string -> float -> unit
(** [observe name v] forwards [v] to the installed observer under the
    metric [name].  A no-op (after one branch) when no observer is
    installed. *)

val set_observer : (string -> float -> unit) -> unit
(** Install the observation consumer and raise {!observing}. *)

val clear_observer : unit -> unit
(** Remove the consumer and lower {!observing}. *)
