let solve_into ~lower ~diag ~upper ~rhs ~cw ~dw ~out =
  let n = Array.length diag in
  if n = 0 then invalid_arg "Tridiag.solve: empty system";
  if Array.length lower <> n - 1 || Array.length upper <> n - 1
     || Array.length rhs <> n
  then invalid_arg "Tridiag.solve: inconsistent lengths";
  if Array.length cw < Stdlib.max 1 (n - 1) || Array.length dw < n
     || Array.length out < n
  then invalid_arg "Tridiag.solve: scratch too short";
  (* forward sweep *)
  if diag.(0) = 0.0 then invalid_arg "Tridiag.solve: zero pivot";
  if n > 1 then cw.(0) <- upper.(0) /. diag.(0);
  dw.(0) <- rhs.(0) /. diag.(0);
  for i = 1 to n - 1 do
    let m = diag.(i) -. (lower.(i - 1) *. cw.(i - 1)) in
    if m = 0.0 then invalid_arg "Tridiag.solve: zero pivot";
    if i < n - 1 then cw.(i) <- upper.(i) /. m;
    dw.(i) <- (rhs.(i) -. (lower.(i - 1) *. dw.(i - 1))) /. m
  done;
  (* back substitution *)
  out.(n - 1) <- dw.(n - 1);
  for i = n - 2 downto 0 do
    out.(i) <- dw.(i) -. (cw.(i) *. out.(i + 1))
  done

let solve ~lower ~diag ~upper ~rhs =
  let n = Array.length diag in
  if n = 0 then invalid_arg "Tridiag.solve: empty system";
  let cw = Array.make (Stdlib.max 1 (n - 1)) 0.0 in
  let dw = Array.make n 0.0 in
  let out = Array.make n 0.0 in
  solve_into ~lower ~diag ~upper ~rhs ~cw ~dw ~out;
  out
