(** Tridiagonal linear systems (Thomas algorithm).

    Used by the Crank–Nicolson diffusion solver that serves as the
    physical reference for the analytical battery model. *)

val solve :
  lower:float array -> diag:float array -> upper:float array ->
  rhs:float array -> float array
(** [solve ~lower ~diag ~upper ~rhs] solves the [n x n] system with
    [diag] (length [n]), [lower] (length [n-1], sub-diagonal) and
    [upper] (length [n-1], super-diagonal).  The inputs are not
    modified.  The algorithm does not pivot; it is stable for the
    diagonally dominant systems produced by diffusion stencils.
    @raise Invalid_argument on inconsistent lengths, [n = 0], or a zero
    pivot. *)

val solve_into :
  lower:float array -> diag:float array -> upper:float array ->
  rhs:float array -> cw:float array -> dw:float array ->
  out:float array -> unit
(** Allocation-free variant: the Thomas sweeps run in caller-provided
    scratch ([cw] length >= [max 1 (n-1)], [dw] length >= [n]) and the
    solution is written to [out] (length >= [n]).  [out] may not alias
    the inputs.  Identical operation order to {!solve} — the two return
    bit-identical solutions — so the Crank–Nicolson inner loop can go
    through this without perturbing results.
    @raise Invalid_argument as {!solve}, or on short scratch. *)
