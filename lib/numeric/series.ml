let default_terms = 10

let check_beta beta =
  if not (beta > 0.0) then invalid_arg "Series: beta must be positive"

let check_terms terms =
  if terms <= 0 then invalid_arg "Series: terms must be positive"

let exp_sum ?(terms = default_terms) ~beta t =
  check_beta beta;
  check_terms terms;
  if t < 0.0 then invalid_arg "Series.exp_sum: negative time";
  let b2 = beta *. beta in
  let term i =
    let m = float_of_int (i + 1) in
    let m2 = m *. m in
    exp (-.b2 *. m2 *. t) /. (b2 *. m2)
  in
  2.0 *. Kahan.sum_fn terms term

let kernel_direct ?(terms = default_terms) ~beta a b =
  check_beta beta;
  check_terms terms;
  if a < 0.0 || b < a then invalid_arg "Series.kernel: need 0 <= a <= b";
  let b2 = beta *. beta in
  let term i =
    let m = float_of_int (i + 1) in
    let m2 = m *. m in
    (exp (-.b2 *. m2 *. a) -. exp (-.b2 *. m2 *. b)) /. (b2 *. m2)
  in
  2.0 *. Kahan.sum_fn terms term

(* Memoized one-sided tails.  [kernel ~beta a b] telescopes as
   [F(a) - F(b)] over [F = exp_sum], so the per-(beta, terms) table
   shares endpoint evaluations: back-to-back profile intervals reuse
   each boundary twice, and the thousands of near-identical
   evaluations a window sweep makes hit the table directly.  The cache
   is domain-local (no locking, safe under [Pool] fan-out) and is
   flushed wholesale when it reaches [cache_limit] entries. *)
let cache_limit = 1 lsl 16

let cache : ((float * int * float), float) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let exp_sum_cached ?(terms = default_terms) ~beta t =
  check_beta beta;
  check_terms terms;
  if t < 0.0 then invalid_arg "Series.exp_sum: negative time";
  let tbl = Domain.DLS.get cache in
  let key = (beta, terms, t) in
  let probe = Probe.local () in
  match Hashtbl.find_opt tbl key with
  | Some v ->
      probe.Probe.fmemo_hits <- probe.Probe.fmemo_hits + 1;
      v
  | None ->
      probe.Probe.fmemo_misses <- probe.Probe.fmemo_misses + 1;
      let v = exp_sum ~terms ~beta t in
      if Hashtbl.length tbl >= cache_limit then Hashtbl.reset tbl;
      Hashtbl.add tbl key v;
      v

let kernel ?(terms = default_terms) ~beta a b =
  check_beta beta;
  check_terms terms;
  if a < 0.0 || b < a then invalid_arg "Series.kernel: need 0 <= a <= b";
  if a = b then 0.0
  else
    (* F is strictly decreasing, so the difference is >= 0 up to
       rounding; clamp the few-ulp negatives away. *)
    Float.max 0.0
      (exp_sum_cached ~terms ~beta a -. exp_sum_cached ~terms ~beta b)

let kernel_limit ~beta =
  check_beta beta;
  Float.pi *. Float.pi /. (3.0 *. beta *. beta)
