let default_terms = 10

let check_beta beta =
  if not (beta > 0.0) then invalid_arg "Series: beta must be positive"

let check_terms terms =
  if terms <= 0 then invalid_arg "Series: terms must be positive"

(* Callers build time arguments as differences of interval endpoints;
   float cancellation can leave a few-ulp negative where the exact
   value is 0.  Absorb that noise instead of raising — anything beyond
   the tolerance is a real caller bug and still rejected. *)
let negative_tolerance = 1e-12

let[@inline] clamp_time t =
  if t >= 0.0 then t
  else if t >= -.negative_tolerance then 0.0
  else invalid_arg "Series.exp_sum: negative time"

let exp_sum ?(terms = default_terms) ~beta t =
  check_beta beta;
  check_terms terms;
  let t = clamp_time t in
  let b2 = beta *. beta in
  let term i =
    let m = float_of_int (i + 1) in
    let m2 = m *. m in
    exp (-.b2 *. m2 *. t) /. (b2 *. m2)
  in
  2.0 *. Kahan.sum_fn terms term

let kernel_direct ?(terms = default_terms) ~beta a b =
  check_beta beta;
  check_terms terms;
  if a < 0.0 || b < a then invalid_arg "Series.kernel: need 0 <= a <= b";
  let b2 = beta *. beta in
  let term i =
    let m = float_of_int (i + 1) in
    let m2 = m *. m in
    (exp (-.b2 *. m2 *. a) -. exp (-.b2 *. m2 *. b)) /. (b2 *. m2)
  in
  2.0 *. Kahan.sum_fn terms term

(* Memoized one-sided tails.  [kernel ~beta a b] telescopes as
   [F(a) - F(b)] over [F = exp_sum], so one memo table over F values
   shares endpoint evaluations: back-to-back profile intervals reuse
   each boundary twice, and the thousands of near-identical
   evaluations a window sweep makes hit the table directly.  The memo
   is an {!Fcache} keyed on (beta, terms-as-float, t) — a lookup hashes
   the raw float words, allocates nothing, and old entries expire half
   a table at a time instead of the former [Hashtbl.reset] cliff.  The
   table is domain-local (no locking, safe under [Pool] fan-out). *)
let cache : Fcache.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Fcache.create ~label:"series-f" ~arity:3 ())

let exp_sum_cached ?(terms = default_terms) ~beta t =
  check_beta beta;
  check_terms terms;
  let t = clamp_time t in
  let tbl = Domain.DLS.get cache in
  let terms_f = float_of_int terms in
  let probe = Probe.local () in
  let v = Fcache.find3 tbl beta terms_f t in
  if Float.is_nan v then begin
    probe.Probe.fmemo_misses <- probe.Probe.fmemo_misses + 1;
    let v = exp_sum ~terms ~beta t in
    Fcache.add3 tbl beta terms_f t ~value:v;
    v
  end
  else begin
    probe.Probe.fmemo_hits <- probe.Probe.fmemo_hits + 1;
    v
  end

let kernel ?(terms = default_terms) ~beta a b =
  check_beta beta;
  check_terms terms;
  if a < 0.0 || b < a then invalid_arg "Series.kernel: need 0 <= a <= b";
  if a = b then 0.0
  else
    (* F is strictly decreasing, so the difference is >= 0 up to
       rounding; clamp the few-ulp negatives away. *)
    Float.max 0.0
      (exp_sum_cached ~terms ~beta a -. exp_sum_cached ~terms ~beta b)

let kernel_limit ~beta =
  check_beta beta;
  Float.pi *. Float.pi /. (3.0 *. beta *. beta)
