(* A thin layer over the shared SplitMix64 core: [bits64] is
   [Splitmix.next] verbatim, so every committed stream (search walks,
   generated graphs) is unchanged by the extraction. *)

type t = Splitmix.t

let create = Splitmix.create

let bits64 = Splitmix.next

let split = Splitmix.split

let copy = Splitmix.copy

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     small bounds used here, but we still mask to 62 bits to stay
     non-negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  v mod n

let float g x =
  if not (x > 0.0) then invalid_arg "Rng.float: bound must be positive";
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  x *. (v /. 9007199254740992.0) (* 2^53 *)

let bool g = Int64.logand (bits64 g) 1L = 1L

let pick g = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int g (List.length xs))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
