(** Fork-join fan-out over OCaml 5 domains.

    A pool is a {e requested} degree of parallelism; each parallel
    region spawns up to [size - 1] fresh domains (the calling domain
    works too) and joins them before returning.  No domains linger
    between calls, so a pool value is cheap to create, store in a
    config, and share.

    {2 Determinism}

    [map_*] returns results in input order, regardless of which domain
    computed what, and the work function sees exactly the same
    arguments as a sequential [map] — parallel and sequential runs are
    bit-identical for pure (or domain-local-state-only) functions.  If
    several items raise, the exception of the {e smallest index} is
    re-raised, matching the first failure a sequential scan would
    surface.

    {2 Nesting}

    A [map] issued from inside a worker of another region runs
    sequentially on that worker: composing a multistart fan-out with a
    window-sweep fan-out cannot oversubscribe the machine. *)

type t

val sequential : t
(** The size-1 pool: every [map] runs inline, no domains spawned. *)

val create : int -> t
(** [create size] requests up to [size] concurrent domains per region.
    @raise Invalid_argument if [size < 1]. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    useful parallelism on this machine. *)

val create_recommended : unit -> t
(** [create (recommended ())]. *)

val size : t -> int
(** The requested degree of parallelism. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map.  Work is dealt in strides (worker
    [w] takes indices [w], [w + workers], ...), which balances
    index-correlated costs. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** As {!map_array}, on lists.  (Empty and singleton lists short-cut
    without entering {!map_array}.) *)

(** {2 Observability}

    [map_array] counts every mapped item into {!Probe.pool_tasks} and
    every region that actually fans out into {!Probe.pool_regions}, and
    each worker domain {!Probe.drain_local}s its counters before it
    exits, so per-domain work counts survive the join. *)

val worker_index : unit -> int
(** The calling domain's worker slot within the current parallel
    region ([0] = the calling domain), [0] outside any region.  Used
    to tag telemetry records with which worker produced them. *)

val set_worker_hooks :
  on_start:(int -> unit) -> on_finish:(int -> unit) -> unit
(** Install hooks run {e inside} each worker domain around its slice of
    a parallel region: [on_start w] before the first item, [on_finish w]
    after the last (also on exception), where [w] is the worker index
    ([0] = the calling domain).  One global hook pair; installing
    replaces the previous one.  Used by [Batsched_obs.Sink] to tag
    trace tracks and flush span buffers — library users normally never
    call this. *)
