(** Persistent work-stealing executor over OCaml 5 domains.

    A pool owns a set of long-lived worker domains (spawned lazily on
    first parallel use, so a never-used pool costs nothing) and deals
    parallel regions through per-worker Chase–Lev deques: whoever picks
    up an index range splits it in half while it is above the region's
    grain, pushing the upper half for thieves, so chunk sizes adapt to
    the actual cost skew instead of a static stride.  Idle workers
    steal from victims chosen by a deterministic per-worker RNG, then
    park; between regions the pool consumes no CPU.

    {2 Determinism}

    [map_*] returns results in input order, regardless of which domain
    computed what, and the work function sees exactly the same
    arguments as a sequential [map] — parallel and sequential runs are
    bit-identical for pure (or domain-local-state-only) functions, at
    any pool size.  If several items raise, the exception of the
    {e smallest index} is re-raised, matching the first failure a
    sequential scan would surface.

    {2 Nesting}

    A [map] issued from inside a worker of another region (or from a
    {!submit}ted job) runs sequentially on that worker: composing a
    multistart fan-out with a window-sweep fan-out cannot oversubscribe
    the machine.

    {2 Lifecycle}

    Worker domains persist until {!shutdown} (or process exit).  The
    process-wide helper-domain count is capped well below the runtime's
    domain limit; pools created past the cap degrade gracefully to
    sequential execution.  Prefer {!with_pool} for scoped use. *)

type t

val sequential : t
(** The size-1 pool: every [map] runs inline, no domains spawned. *)

val create : int -> t
(** [create size] requests up to [size] concurrent domains per region
    (the calling domain works too, as worker 0).  Workers are spawned
    on first parallel use, not here.
    @raise Invalid_argument if [size < 1]. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    useful parallelism on this machine. *)

val create_recommended : unit -> t
(** [create (recommended ())]. *)

val size : t -> int
(** The requested degree of parallelism. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map with work-stealing load balancing. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** As {!map_array}, on lists.  Sequential and nested calls take a
    direct list path (no intermediate arrays); parallel calls convert
    once. *)

val for_range : t -> n:int -> (int -> int -> unit) -> unit
(** [for_range pool ~n f] covers [0, n)] with disjoint half-open spans
    [f lo hi], adaptively sized and possibly concurrent.  [f] must
    only write state disjoint per index (e.g. structure-of-arrays
    columns).  Sequential and nested calls run [f 0 n] inline.  If
    spans raise, the exception of the smallest [lo] is re-raised. *)

val map_array_strided : t -> ('a -> 'b) -> 'a array -> 'b array
(** The legacy fork-join path: fresh domains spawned per region, work
    dealt by static striding (worker [w] takes indices [w],
    [w + workers], ...).  Same results contract as {!map_array}; kept
    as a benchmark baseline and test oracle. *)

val submit : t -> (unit -> unit) -> unit
(** [submit pool job] hands [job] to an idle worker and returns
    immediately; jobs run with region nesting in effect, so parallel
    regions opened inside a job degrade to sequential.  Exceptions
    escaping [job] are dropped — jobs own their error handling.  On a
    pool with no helper domains (size 1, or budget exhausted) the job
    runs inline before [submit] returns.  Jobs still queued at
    {!shutdown} are discarded. *)

val shutdown : t -> unit
(** Stop and join the pool's worker domains (finishing whatever task
    each is running) and return them to the process-wide budget.
    Idempotent.  Subsequent [map]s on the pool run sequentially. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool size f] is [f (create size)] with a guaranteed
    {!shutdown} on exit ([Fun.protect]). *)

(** {2 Observability}

    [map_array]/[map_list]/[for_range] count every item into
    {!Probe.pool_tasks} and every region that actually fans out into
    {!Probe.pool_regions}; successful steals count into
    {!Probe.pool_steals}.  Each participating worker
    {!Probe.drain_local}s its counters before the region join (and
    after each job), so per-domain work counts are always visible in
    {!Probe.totals} when a region or job has completed.  When
    {!Probe.observing} is on, every participant also observes its
    busy-fraction for the region as ["pool/occupancy"]. *)

type worker_stat = {
  items : int;  (** region items executed by this slot *)
  chunks : int;  (** chunks (split ranges) executed *)
  steals : int;  (** successful steals from other deques *)
  jobs : int;  (** {!submit}ted jobs executed *)
  busy_s : float;  (** wall-clock seconds spent executing *)
}

val worker_stats : t -> worker_stat array
(** Per-slot counters since the executor started: index 0 is the
    region-calling domains, 1.. the persistent workers.  Empty if the
    executor has not started (no parallel use yet, or already shut
    down).  Counters are read racily — totals may trail reality by a
    task while workers are mid-flight. *)

val live_workers : t -> int
(** Helper domains currently alive for this pool (0 before first
    parallel use and after {!shutdown}). *)

val worker_index : unit -> int
(** The calling domain's worker slot within the current parallel
    region or job ([0] = the calling domain), [0] outside any region.
    Used to tag telemetry records with which worker produced them. *)

val set_worker_hooks :
  on_start:(int -> unit) -> on_finish:(int -> unit) -> unit
(** Install hooks run {e inside} each worker domain around its share of
    a parallel region or job: [on_start w] before it first executes,
    [on_finish w] when it runs out of region work (also on exception),
    where [w] is the worker slot ([0] = the calling domain).  A
    persistent worker may start and finish several times within one
    region if it goes idle and then steals back in.  One global hook
    pair; installing replaces the previous one.  Used by
    [Batsched_obs.Sink] to tag trace tracks and flush span buffers —
    library users normally never call this. *)

val set_task_delay : (unit -> unit) option -> unit
(** Test-only: run the given thunk before every chunk execution, on
    whichever domain executes it.  Dilating chunks this way forces
    steal interleavings that are hard to hit on few cores; the tests
    use it to check determinism under stealing.  [None] removes the
    hook. *)
