type t = {
  mutable sigma_evals : int;
  mutable fmemo_hits : int;
  mutable fmemo_misses : int;
  mutable contrib_hits : int;
  mutable contrib_misses : int;
  mutable dpf_steps : int;
  mutable window_evals : int;
  mutable choose_calls : int;
  mutable iterations : int;
  mutable anneal_accepted : int;
  mutable anneal_rejected : int;
  mutable anneal_noops : int;
  mutable delta_swaps : int;
  mutable delta_repoints : int;
  mutable delta_commits : int;
  mutable delta_discards : int;
  mutable delta_terms : int;
  mutable delta_full_evals : int;
  mutable batch_evals : int;
  mutable batch_candidates : int;
  mutable batch_fallbacks : int;
  mutable delta_ck_advances : int;
  mutable delta_ck_restores : int;
  mutable fcache_evictions : int;
  mutable pool_regions : int;
  mutable pool_tasks : int;
  mutable pool_steals : int;
  mutable named : (string * int) list;
}

let zero () =
  { sigma_evals = 0;
    fmemo_hits = 0;
    fmemo_misses = 0;
    contrib_hits = 0;
    contrib_misses = 0;
    dpf_steps = 0;
    window_evals = 0;
    choose_calls = 0;
    iterations = 0;
    anneal_accepted = 0;
    anneal_rejected = 0;
    anneal_noops = 0;
    delta_swaps = 0;
    delta_repoints = 0;
    delta_commits = 0;
    delta_discards = 0;
    delta_terms = 0;
    delta_full_evals = 0;
    batch_evals = 0;
    batch_candidates = 0;
    batch_fallbacks = 0;
    delta_ck_advances = 0;
    delta_ck_restores = 0;
    fcache_evictions = 0;
    pool_regions = 0;
    pool_tasks = 0;
    pool_steals = 0;
    named = [] }

(* Named counters: a tiny assoc list, because the key population is a
   handful of model names — linear scan beats hashing at that size and
   keeps [zero]/[clear] allocation-free.  Bumps on the hot path go
   through {!bump_named} on the domain-local record. *)
let bump_named c name v =
  let rec go = function
    | [] -> c.named <- (name, v) :: c.named
    | (n, _) :: _ when String.equal n name ->
        c.named <-
          List.map
            (fun (n, old) ->
              if String.equal n name then (n, old + v) else (n, old))
            c.named
    | _ :: rest -> go rest
  in
  go c.named

let named_counts c =
  List.sort (fun (a, _) (b, _) -> String.compare a b) c.named

let add ~into c =
  into.sigma_evals <- into.sigma_evals + c.sigma_evals;
  into.fmemo_hits <- into.fmemo_hits + c.fmemo_hits;
  into.fmemo_misses <- into.fmemo_misses + c.fmemo_misses;
  into.contrib_hits <- into.contrib_hits + c.contrib_hits;
  into.contrib_misses <- into.contrib_misses + c.contrib_misses;
  into.dpf_steps <- into.dpf_steps + c.dpf_steps;
  into.window_evals <- into.window_evals + c.window_evals;
  into.choose_calls <- into.choose_calls + c.choose_calls;
  into.iterations <- into.iterations + c.iterations;
  into.anneal_accepted <- into.anneal_accepted + c.anneal_accepted;
  into.anneal_rejected <- into.anneal_rejected + c.anneal_rejected;
  into.anneal_noops <- into.anneal_noops + c.anneal_noops;
  into.delta_swaps <- into.delta_swaps + c.delta_swaps;
  into.delta_repoints <- into.delta_repoints + c.delta_repoints;
  into.delta_commits <- into.delta_commits + c.delta_commits;
  into.delta_discards <- into.delta_discards + c.delta_discards;
  into.delta_terms <- into.delta_terms + c.delta_terms;
  into.delta_full_evals <- into.delta_full_evals + c.delta_full_evals;
  into.batch_evals <- into.batch_evals + c.batch_evals;
  into.batch_candidates <- into.batch_candidates + c.batch_candidates;
  into.batch_fallbacks <- into.batch_fallbacks + c.batch_fallbacks;
  into.delta_ck_advances <- into.delta_ck_advances + c.delta_ck_advances;
  into.delta_ck_restores <- into.delta_ck_restores + c.delta_ck_restores;
  into.fcache_evictions <- into.fcache_evictions + c.fcache_evictions;
  into.pool_regions <- into.pool_regions + c.pool_regions;
  into.pool_tasks <- into.pool_tasks + c.pool_tasks;
  into.pool_steals <- into.pool_steals + c.pool_steals;
  List.iter (fun (name, v) -> bump_named into name v) c.named

let clear c =
  c.sigma_evals <- 0;
  c.fmemo_hits <- 0;
  c.fmemo_misses <- 0;
  c.contrib_hits <- 0;
  c.contrib_misses <- 0;
  c.dpf_steps <- 0;
  c.window_evals <- 0;
  c.choose_calls <- 0;
  c.iterations <- 0;
  c.anneal_accepted <- 0;
  c.anneal_rejected <- 0;
  c.anneal_noops <- 0;
  c.delta_swaps <- 0;
  c.delta_repoints <- 0;
  c.delta_commits <- 0;
  c.delta_discards <- 0;
  c.delta_terms <- 0;
  c.delta_full_evals <- 0;
  c.batch_evals <- 0;
  c.batch_candidates <- 0;
  c.batch_fallbacks <- 0;
  c.delta_ck_advances <- 0;
  c.delta_ck_restores <- 0;
  c.fcache_evictions <- 0;
  c.pool_regions <- 0;
  c.pool_tasks <- 0;
  c.pool_steals <- 0;
  c.named <- []

let fields =
  [ ("sigma_evals", fun c -> c.sigma_evals);
    ("fmemo_hits", fun c -> c.fmemo_hits);
    ("fmemo_misses", fun c -> c.fmemo_misses);
    ("contrib_hits", fun c -> c.contrib_hits);
    ("contrib_misses", fun c -> c.contrib_misses);
    ("dpf_steps", fun c -> c.dpf_steps);
    ("window_evals", fun c -> c.window_evals);
    ("choose_calls", fun c -> c.choose_calls);
    ("iterations", fun c -> c.iterations);
    ("anneal_accepted", fun c -> c.anneal_accepted);
    ("anneal_rejected", fun c -> c.anneal_rejected);
    ("anneal_noops", fun c -> c.anneal_noops);
    ("delta_swaps", fun c -> c.delta_swaps);
    ("delta_repoints", fun c -> c.delta_repoints);
    ("delta_commits", fun c -> c.delta_commits);
    ("delta_discards", fun c -> c.delta_discards);
    ("delta_terms", fun c -> c.delta_terms);
    ("delta_full_evals", fun c -> c.delta_full_evals);
    ("batch_evals", fun c -> c.batch_evals);
    ("batch_candidates", fun c -> c.batch_candidates);
    ("batch_fallbacks", fun c -> c.batch_fallbacks);
    ("delta_ck_advances", fun c -> c.delta_ck_advances);
    ("delta_ck_restores", fun c -> c.delta_ck_restores);
    ("fcache_evictions", fun c -> c.fcache_evictions);
    ("pool_regions", fun c -> c.pool_regions);
    ("pool_tasks", fun c -> c.pool_tasks);
    ("pool_steals", fun c -> c.pool_steals) ]

(* Distribution observer: hot paths hand scalar observations (Fcache
   probe lengths, delta commit batch sizes, ...) to whoever installed
   the hook — [Batsched_obs.Histogram] in practice — so this library
   never depends on the observability layer.  Call sites guard on
   [observing] first: disabled cost is one load and a branch, and the
   float argument is never boxed. *)
let observing = ref false

let observer : (string -> float -> unit) ref = ref (fun _ _ -> ())

let set_observer f =
  observer := f;
  observing := true

let clear_observer () =
  observing := false;
  observer := (fun _ _ -> ())

let observe name v = if !observing then !observer name v

(* Per-domain accumulator.  Bumps are plain mutable-field increments on
   the calling domain's record: no locks, no atomics, nothing shared on
   the hot path. *)
let local_key : t Domain.DLS.key = Domain.DLS.new_key zero

let local () = Domain.DLS.get local_key

(* Counts drained from finished domains.  Integer addition commutes, so
   the merged totals are independent of worker scheduling and join
   order — deterministic for a fixed configuration. *)
let drained_mutex = Mutex.create ()

let drained = zero ()

let drain_local () =
  let c = local () in
  Mutex.lock drained_mutex;
  add ~into:drained c;
  Mutex.unlock drained_mutex;
  clear c

let totals () =
  let out = zero () in
  Mutex.lock drained_mutex;
  add ~into:out drained;
  Mutex.unlock drained_mutex;
  add ~into:out (local ());
  out

let reset () =
  Mutex.lock drained_mutex;
  clear drained;
  Mutex.unlock drained_mutex;
  clear (local ())
