open Batsched_taskgraph
open Batsched_battery
module Json = Batsched_obs.Json

type search = {
  algo : string;
  model_name : string;
  beta : float;
  seed : int;
  starts : int;
  steps : int option;
  t0 : float option;
  samples : int option;
}

type t = { id : string; graph : Graph.t; deadline : float; search : search }

type incoming = Submit of t | Cancel of string

let algos = [ "iterative"; "iterative-ms"; "annealing"; "random" ]

let models = [ "rakhmatov"; "kibam"; "peukert"; "ideal" ]

let model s =
  match s.model_name with
  | "ideal" -> Ideal.model
  | "peukert" -> Peukert.model ()
  | "kibam" -> Kibam.model ()
  | "rakhmatov" | _ -> Rakhmatov.model ~beta:s.beta ()

(* One request per line:
     {"id":"r1","graph":"graph g\ntask A 600:2 350:3\n...","deadline":9,
      "algo":"annealing","model":"rakhmatov","seed":7,"steps":8}
   or a cancellation: {"cancel":"r1"}.  Everything but [id], [graph]
   and [deadline] is optional.  Validation happens here, so a request
   that parses always runs. *)
let of_json line =
  match Json.parse line with
  | exception Json.Bad_json msg -> Error ("bad json: " ^ msg)
  | j -> (
      match Json.str_field "cancel" j with
      | Some id -> Ok (Cancel id)
      | None -> (
          let str name = Json.str_field name j in
          let num name = Json.num_field name j in
          match (str "id", str "graph", num "deadline") with
          | None, _, _ -> Error "missing field: id"
          | _, None, _ -> Error "missing field: graph"
          | _, _, None -> Error "missing field: deadline"
          | Some id, Some graph_src, Some deadline -> (
              if deadline <= 0.0 then Error "deadline must be positive"
              else
                match Textio.of_string graph_src with
                | exception Textio.Parse_error { line; message } ->
                    Error (Printf.sprintf "graph line %d: %s" line message)
                | graph ->
                    let algo =
                      Option.value (str "algo") ~default:"annealing"
                    in
                    let model_name =
                      Option.value (str "model") ~default:"rakhmatov"
                    in
                    if not (List.mem algo algos) then
                      Error ("unknown algo: " ^ algo)
                    else if not (List.mem model_name models) then
                      Error ("unknown model: " ^ model_name)
                    else
                      let search =
                        { algo;
                          model_name;
                          beta =
                            Option.value (num "beta")
                              ~default:Rakhmatov.default_beta;
                          seed =
                            int_of_float (Option.value (num "seed") ~default:0.0);
                          starts =
                            int_of_float
                              (Option.value (num "starts") ~default:4.0);
                          steps = Option.map int_of_float (num "steps");
                          t0 = num "t0";
                          samples = Option.map int_of_float (num "samples") }
                      in
                      if search.starts < 1 then Error "starts must be >= 1"
                      else if
                        match search.steps with Some s -> s < 1 | None -> false
                      then Error "steps must be >= 1"
                      else if
                        match search.samples with
                        | Some s -> s < 1
                        | None -> false
                      then Error "samples must be >= 1"
                      else Ok (Submit { id; graph; deadline; search }))))
