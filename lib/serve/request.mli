(** Parsing and validation of [basched serve] requests.

    The wire format is newline-framed JSON: one object per line, either
    a scheduling request or a cancellation.  A request names a task
    graph (inline, in the {!Batsched_taskgraph.Textio} format), a
    deadline, and optional search knobs; defaults match the single-shot
    [basched] CLI so a served request with the same seed and knobs is
    bit-identical to a command-line run.

    {v
    {"id":"r1","deadline":9.0,"algo":"annealing","seed":7,
     "graph":"graph g\ntask A 600:2 350:3 150:5\ntask B 519:3 319:4\nedge A B"}
    {"cancel":"r1"}
    v} *)

open Batsched_taskgraph
open Batsched_battery

type search = {
  algo : string;  (** iterative | iterative-ms | annealing | random *)
  model_name : string;  (** rakhmatov | kibam | peukert | ideal *)
  beta : float;  (** Rakhmatov beta (default: the paper's) *)
  seed : int;  (** RNG seed (default 0) *)
  starts : int;  (** multistart fan-out for iterative-ms (default 4) *)
  steps : int option;  (** annealing steps per temperature level *)
  t0 : float option;  (** annealing initial temperature *)
  samples : int option;  (** random-search sample budget *)
}

type t = { id : string; graph : Graph.t; deadline : float; search : search }

type incoming =
  | Submit of t
  | Cancel of string  (** request id to cancel *)

val algos : string list
val models : string list

val model : search -> Model.t
(** Instantiate the battery model a request asked for. *)

val of_json : string -> (incoming, string) result
(** Parse and validate one request line.  A request that parses always
    runs: unknown algos/models, non-positive deadlines and malformed
    graphs are rejected here with a message suitable for an error
    response. *)
