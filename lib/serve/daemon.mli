(** The [basched serve] scheduling daemon.

    A daemon batches independent scheduling requests onto one
    work-stealing {!Batsched_numeric.Pool}: each accepted request
    becomes a pool job, runs its search to completion (or
    cancellation) on a worker domain, and streams its responses as
    tagged {!Batsched_obs.Events} records on a shared output stream —
    the same record shapes single-shot runs emit, plus the daemon's
    own [accepted]/[result]/[cancelled]/[error]/[overloaded]/
    [parse_error]/[serve_done] kinds, every per-request record carrying
    a ["req"] field with the request id.

    {2 Request lifecycle}

    submit → {e admission} (bounded by [capacity]; overflow answers
    [overloaded] immediately) → {e queue} on the pool's injector →
    {e search} on a worker domain (nested parallel regions degrade to
    sequential, so results are bit-identical to a single-shot run with
    the same seed and knobs) → [result] record, or [cancelled] if the
    request's token fired first.  Cancellation tokens are polled at
    anneal-level granularity (once per temperature level; once per
    iteration for the iterative heuristic), so an in-flight cancel
    returns within one level, and the best-so-far work is simply
    dropped.

    Queueing delay and end-to-end latency are recorded into local
    histograms (for {!histograms} and the soak report) and observed as
    ["serve/queue_delay_ms"]/["serve/latency_ms"] when the
    {!Batsched_obs.Histogram} registry is enabled, so [--stats] and
    [--metrics] pick them up alongside the pool's
    ["pool/occupancy"]. *)

type counts = {
  accepted : int;
  completed : int;
  cancelled : int;
  errors : int;  (** failed requests + unparseable lines *)
  rejected : int;  (** refused at admission *)
}

type t

exception Cancelled
(** Raised inside a request's search when its token fires. *)

val create :
  ?capacity:int ->
  ?stream_search:bool ->
  pool:Batsched_numeric.Pool.t ->
  events:Batsched_obs.Events.t ->
  unit ->
  t
(** [create ~pool ~events ()] makes a daemon submitting onto [pool]
    and answering on [events] (typically
    {!Batsched_obs.Events.create_channel}[ stdout]).  [capacity]
    (default 64) bounds queued-plus-running requests.
    [stream_search] (default true) forwards each request's own search
    convergence records (anneal levels, iterations, trials) onto the
    response stream, tagged with the request id; set it false to
    answer with terminal records only.
    @raise Invalid_argument if [capacity < 1]. *)

val submit : t -> Request.t -> [ `Accepted | `Rejected ]
(** Admit a request; returns as soon as it is queued.  [`Rejected]
    (capacity full) has already emitted the [overloaded] response. *)

val cancel : t -> string -> unit
(** Fire the cancellation token for a request id.  Unknown ids are
    remembered, so a cancel racing ahead of its submit still wins;
    cancelling a finished request is a no-op. *)

val handle_line : t -> string -> unit
(** Parse one wire line and dispatch it (submit or cancel); malformed
    lines answer [parse_error] and count as errors.  Blank lines are
    ignored. *)

val drain : t -> unit
(** Block until no request is queued or running. *)

val run_channel : t -> in_channel -> counts
(** Feed every line of the channel through {!handle_line}, then
    {!drain} and emit a [serve_done] summary record.  The caller still
    owns the pool ({!Batsched_numeric.Pool.shutdown}) and the events
    stream. *)

val counts : t -> counts

val histograms : t -> Batsched_obs.Histogram.t * Batsched_obs.Histogram.t
(** Copies of the (queueing-delay, end-to-end-latency) histograms, in
    milliseconds. *)
