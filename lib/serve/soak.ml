module Pool = Batsched_numeric.Pool
module Rng = Batsched_numeric.Rng
module Events = Batsched_obs.Events
module Histogram = Batsched_obs.Histogram
module Json = Batsched_obs.Json

(* Small feasible task graphs in the Textio format, spanning shapes
   (chain, diamond, fork-join) so the served mix is structurally
   heterogeneous, not just budget-heterogeneous. *)
let graphs =
  [| ( "chain4",
       "graph chain4\n\
        task A 600:2 350:3 150:5\n\
        task B 519:2 319:3 163:5\n\
        task C 417:2 250:3 120:5\n\
        task D 700:1 420:2 210:4\n\
        edge A B\n\
        edge B C\n\
        edge C D",
       14.0 );
     ( "diamond",
       "graph diamond\n\
        task A 500:1 300:2 150:3\n\
        task B 640:2 380:3 190:5\n\
        task C 560:2 330:3 170:5\n\
        task D 450:1 270:2 140:3\n\
        edge A B\n\
        edge A C\n\
        edge B D\n\
        edge C D",
       12.0 );
     ( "forkjoin5",
       "graph forkjoin5\n\
        task S 520:1 310:2 160:3\n\
        task A 610:2 360:3 180:5\n\
        task B 580:2 340:3 175:5\n\
        task C 660:2 390:3 200:5\n\
        task J 480:1 290:2 150:3\n\
        edge S A\n\
        edge S B\n\
        edge S C\n\
        edge A J\n\
        edge B J\n\
        edge C J",
       16.0 ) |]

let models = [| "rakhmatov"; "kibam"; "peukert"; "ideal" |]

let request_json ~id ~graph_src ~deadline ~algo ~model ~seed ~knobs =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"id\":\"%s\",\"deadline\":%g,\"algo\":\"%s\",\"model\":\"%s\",\"seed\":%d"
       id deadline algo model seed);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf ",\"%s\":%g" k v))
    knobs;
  Buffer.add_string b ",\"graph\":\"";
  Buffer.add_string b (Json.escape_string graph_src);
  Buffer.add_string b "\"}";
  Buffer.contents b

(* The i-th request of the mix.  Budgets spread 10x within each
   algorithm family (annealing temperature ladders, random-search
   sample counts), which is exactly the skew that leaves fork-join
   workers idle and that work stealing rebalances. *)
let mixed_request ~rng i =
  let _, graph_src, deadline = graphs.(i mod Array.length graphs) in
  let model = models.(i mod Array.length models) in
  let seed = (i * 37) + Rng.int rng 1000 in
  let id = Printf.sprintf "r%d" i in
  match i mod 4 with
  | 0 ->
      (* light annealing: short ladder, few steps *)
      request_json ~id ~graph_src ~deadline ~algo:"annealing" ~model ~seed
        ~knobs:[ ("t0", 40.0); ("steps", 2.0) ]
  | 1 ->
      (* heavy annealing: 10x the t0 and steps of the light one *)
      request_json ~id ~graph_src ~deadline ~algo:"annealing" ~model ~seed
        ~knobs:[ ("t0", 400.0); ("steps", 20.0) ]
  | 2 ->
      request_json ~id ~graph_src ~deadline ~algo:"iterative" ~model ~seed
        ~knobs:[]
  | _ ->
      let samples = float_of_int (4 * (1 + (i mod 10))) in
      request_json ~id ~graph_src ~deadline ~algo:"random" ~model ~seed
        ~knobs:[ ("samples", samples) ]

let mixed_lines ~n ~seed =
  let rng = Rng.create seed in
  List.init n (fun i -> mixed_request ~rng i)

(* A fixture for smoke tests: [n - 1] mixed requests, one long-running
   annealing request, and a cancel for it right behind — if in-flight
   cancellation ever stops being prompt, the smoke run blows its
   timeout instead of passing silently. *)
let fixture_lines ~n ~seed =
  let quick = mixed_lines ~n:(Stdlib.max 0 (n - 1)) ~seed in
  let _, graph_src, deadline = graphs.(0) in
  let slow =
    request_json ~id:"slow-1" ~graph_src ~deadline ~algo:"annealing"
      ~model:"rakhmatov" ~seed:1
      ~knobs:[ ("t0", 1e7); ("steps", 5000.0) ]
  in
  quick @ [ slow; "{\"cancel\":\"slow-1\"}" ]

type result = {
  n : int;
  counts : Daemon.counts;
  wall_s : float;
  req_per_s : float;
  queue_p50_ms : float;
  queue_p99_ms : float;
  latency_p50_ms : float;
  latency_p99_ms : float;
}

let run ?(seed = 42) ?(events = Events.noop) ?capacity ~pool ~n () =
  let lines = mixed_lines ~n ~seed in
  let capacity = match capacity with Some c -> c | None -> n in
  let d = Daemon.create ~capacity ~stream_search:false ~pool ~events () in
  let t0 = Unix.gettimeofday () in
  List.iter (Daemon.handle_line d) lines;
  Daemon.drain d;
  let wall_s = Unix.gettimeofday () -. t0 in
  let q, l = Daemon.histograms d in
  { n;
    counts = Daemon.counts d;
    wall_s;
    req_per_s = (if wall_s > 0.0 then float_of_int n /. wall_s else 0.0);
    queue_p50_ms = Histogram.quantile q 50.0;
    queue_p99_ms = Histogram.quantile q 99.0;
    latency_p50_ms = Histogram.quantile l 50.0;
    latency_p99_ms = Histogram.quantile l 99.0 }

let result_to_json r =
  Printf.sprintf
    "{\"n\": %d, \"completed\": %d, \"cancelled\": %d, \"errors\": %d, \
     \"rejected\": %d, \"wall_s\": %.4f, \"req_per_s\": %.1f, \
     \"queue_p50_ms\": %.3f, \"queue_p99_ms\": %.3f, \"latency_p50_ms\": \
     %.3f, \"latency_p99_ms\": %.3f}"
    r.n r.counts.Daemon.completed r.counts.Daemon.cancelled
    r.counts.Daemon.errors r.counts.Daemon.rejected r.wall_s r.req_per_s
    r.queue_p50_ms r.queue_p99_ms r.latency_p50_ms r.latency_p99_ms
