(** Heterogeneous load generation and in-process soak runs.

    The mix cycles graph shapes (chain, diamond, fork-join), battery
    models, and algorithms, with 10x budget spread inside each
    algorithm family — the skew that distinguishes a work-stealing
    executor from a fork-join one.  The same generator feeds the
    [serve-soak] bench scenario, the CI smoke fixture
    ([basched serve --gen]), and the unit tests. *)

type result = {
  n : int;
  counts : Daemon.counts;
  wall_s : float;
  req_per_s : float;
  queue_p50_ms : float;
  queue_p99_ms : float;
  latency_p50_ms : float;
  latency_p99_ms : float;
}

val mixed_lines : n:int -> seed:int -> string list
(** [n] mixed request lines (wire format, parseable by
    {!Request.of_json}), deterministic for a fixed seed. *)

val fixture_lines : n:int -> seed:int -> string list
(** As {!mixed_lines}, but the last two lines are a deliberately
    long-running annealing request (id ["slow-1"]) and its
    cancellation — a smoke fixture that hangs rather than passes if
    in-flight cancellation breaks. *)

val run :
  ?seed:int ->
  ?events:Batsched_obs.Events.t ->
  ?capacity:int ->
  pool:Batsched_numeric.Pool.t ->
  n:int ->
  unit ->
  result
(** Run [n] mixed requests through an in-process daemon on [pool]
    (admission capacity defaults to [n], so nothing is rejected) and
    report throughput and latency quantiles.  [events] defaults to
    noop: the soak measures scheduling, not serialization. *)

val result_to_json : result -> string
(** One-object JSON rendering, for the CI soak artifact. *)
