open Batsched_taskgraph
open Batsched_sched
open Batsched_baselines
module Pool = Batsched_numeric.Pool
module Probe = Batsched_numeric.Probe
module Rng = Batsched_numeric.Rng
module Events = Batsched_obs.Events
module Histogram = Batsched_obs.Histogram

exception Cancelled

type counts = {
  accepted : int;
  completed : int;
  cancelled : int;
  errors : int;
  rejected : int;
}

type t = {
  pool : Pool.t;
  events : Events.t;
  capacity : int;
  stream_search : bool;
  inflight : int Atomic.t;
  (* [mu] guards the token table, the outcome counters and the local
     histograms; requests complete at most a few thousand times per
     second, so one lock is fine. *)
  mu : Mutex.t;
  cv : Condition.t;  (* signalled as requests finish; [drain] waits here *)
  tokens : (string, bool Atomic.t) Hashtbl.t;
  mutable n_accepted : int;
  mutable n_completed : int;
  mutable n_cancelled : int;
  mutable n_errors : int;
  mutable n_rejected : int;
  queue_delay_ms : Histogram.t;
  latency_ms : Histogram.t;
}

let create ?(capacity = 64) ?(stream_search = true) ~pool ~events () =
  if capacity < 1 then invalid_arg "Daemon.create: capacity < 1";
  { pool;
    events;
    capacity;
    stream_search;
    inflight = Atomic.make 0;
    mu = Mutex.create ();
    cv = Condition.create ();
    tokens = Hashtbl.create 64;
    n_accepted = 0;
    n_completed = 0;
    n_cancelled = 0;
    n_errors = 0;
    n_rejected = 0;
    queue_delay_ms = Histogram.create ();
    latency_ms = Histogram.create () }

let counts d =
  Mutex.lock d.mu;
  let c =
    { accepted = d.n_accepted;
      completed = d.n_completed;
      cancelled = d.n_cancelled;
      errors = d.n_errors;
      rejected = d.n_rejected }
  in
  Mutex.unlock d.mu;
  c

let histograms d =
  Mutex.lock d.mu;
  let q = Histogram.copy d.queue_delay_ms
  and l = Histogram.copy d.latency_ms in
  Mutex.unlock d.mu;
  (q, l)

let now () = Unix.gettimeofday ()

(* The per-request search, on a pool worker.  Cancellation tokens are
   polled where each algorithm can stop without disturbing its RNG
   lockstep: once per temperature level for annealing, once per
   iteration for the iterative heuristic; random search only checks on
   entry.  An untriggered token leaves every run bit-identical to a
   single-shot [basched] invocation with the same seed and knobs. *)
let run_search d (req : Request.t) token =
  let s = req.search in
  let g = req.graph and deadline = req.deadline in
  let model = Request.model s in
  let rng = Rng.create s.seed in
  let events =
    if d.stream_search then Events.with_tags d.events [ ("req", Events.S req.id) ]
    else Events.noop
  in
  let stop () = Atomic.get token in
  if stop () then raise Cancelled;
  match s.algo with
  | "annealing" ->
      let params =
        let p = Annealing.default_params in
        let p =
          match s.steps with
          | Some n -> { p with Annealing.steps_per_temperature = n }
          | None -> p
        in
        match s.t0 with
        | Some t0 -> { p with Annealing.initial_temperature = t0 }
        | None -> p
      in
      let sol =
        Annealing.run ~params ~events ~should_stop:stop ~rng ~model g ~deadline
      in
      if stop () then raise Cancelled;
      sol
  | "random" ->
      Random_search.run ?samples:s.samples ~events ~rng ~model g ~deadline
  | "iterative" | "iterative-ms" ->
      let cfg = Batsched.Config.make ~model ~events ~deadline () in
      let on_iteration _ = if stop () then raise Cancelled in
      let result =
        if s.algo = "iterative-ms" then
          Batsched.Iterate.run_multistart ~on_iteration ~rng ~starts:s.starts
            cfg g
        else Batsched.Iterate.run ~on_iteration cfg g
      in
      Solution.of_schedule ~model g result.Batsched.Iterate.schedule
  | a ->
      (* [Request.of_json] validates; unreachable for parsed requests *)
      failwith ("unknown algo: " ^ a)

let render_solution g (sol : Solution.t) =
  let names =
    List.map
      (fun i -> (Graph.task g i).Task.name)
      sol.Solution.schedule.Schedule.sequence
  in
  let points =
    List.map string_of_int
      (Assignment.to_list sol.Solution.schedule.Schedule.assignment)
  in
  (String.concat " " names, String.concat " " points)

let finish d token_id f =
  Mutex.lock d.mu;
  f d;
  Hashtbl.remove d.tokens token_id;
  ignore (Atomic.fetch_and_add d.inflight (-1));
  Condition.broadcast d.cv;
  Mutex.unlock d.mu

let run_request d (req : Request.t) token ~arrival =
  let t_start = now () in
  let queue_ms = (t_start -. arrival) *. 1000.0 in
  Mutex.lock d.mu;
  Histogram.record d.queue_delay_ms queue_ms;
  Mutex.unlock d.mu;
  if !Probe.observing then Probe.observe "serve/queue_delay_ms" queue_ms;
  let wall_ms () = (now () -. t_start) *. 1000.0 in
  let tag = ("req", Events.S req.id) in
  let bump =
    match run_search d req token with
    | sol ->
        let seq, points = render_solution req.graph sol in
        Events.emit d.events "result"
          [ tag;
            ("algo", Events.S req.search.algo);
            ("model", Events.S req.search.model_name);
            ("sigma", Events.F sol.Solution.sigma);
            ("finish", Events.F sol.Solution.finish);
            ("queue_ms", Events.F queue_ms);
            ("wall_ms", Events.F (wall_ms ()));
            ("sequence", Events.S seq);
            ("points", Events.S points) ];
        fun d -> d.n_completed <- d.n_completed + 1
    | exception Cancelled ->
        Events.emit d.events "cancelled"
          [ tag; ("wall_ms", Events.F (wall_ms ())) ];
        fun d -> d.n_cancelled <- d.n_cancelled + 1
    | exception e ->
        Events.emit d.events "error"
          [ tag; ("message", Events.S (Printexc.to_string e)) ];
        fun d -> d.n_errors <- d.n_errors + 1
  in
  let lat = wall_ms () +. queue_ms in
  if !Probe.observing then Probe.observe "serve/latency_ms" lat;
  (* latency must land before [finish] broadcasts, or [drain] can
     observe inflight = 0 while the last sample is still in flight *)
  finish d req.id (fun d ->
      Histogram.record d.latency_ms lat;
      bump d)

let submit d (req : Request.t) =
  (* bounded admission: the daemon never holds more than [capacity]
     requests queued-or-running; overflow is refused immediately so
     the producer sees backpressure instead of unbounded latency *)
  let before = Atomic.fetch_and_add d.inflight 1 in
  if before >= d.capacity then begin
    ignore (Atomic.fetch_and_add d.inflight (-1));
    Mutex.lock d.mu;
    d.n_rejected <- d.n_rejected + 1;
    Mutex.unlock d.mu;
    Events.emit d.events "overloaded"
      [ ("req", Events.S req.id); ("capacity", Events.I d.capacity) ];
    `Rejected
  end
  else begin
    let token =
      Mutex.lock d.mu;
      d.n_accepted <- d.n_accepted + 1;
      let tok =
        match Hashtbl.find_opt d.tokens req.id with
        | Some tok -> tok (* a cancel already arrived for this id *)
        | None ->
            let tok = Atomic.make false in
            Hashtbl.add d.tokens req.id tok;
            tok
      in
      Mutex.unlock d.mu;
      tok
    in
    Events.emit d.events "accepted"
      [ ("req", Events.S req.id);
        ("algo", Events.S req.search.algo);
        ("queued", Events.I before) ];
    let arrival = now () in
    Pool.submit d.pool (fun () -> run_request d req token ~arrival);
    `Accepted
  end

let cancel d id =
  Mutex.lock d.mu;
  (match Hashtbl.find_opt d.tokens id with
  | Some tok -> Atomic.set tok true
  | None ->
      (* not in flight: either already finished (cancel is then a
         no-op) or not yet submitted — pre-register a fired token so a
         later submit is cancelled on entry *)
      Hashtbl.add d.tokens id (Atomic.make true));
  Mutex.unlock d.mu

let handle_line d line =
  let line = String.trim line in
  if line = "" then ()
  else
    match Request.of_json line with
    | Ok (Request.Submit req) -> ignore (submit d req)
    | Ok (Request.Cancel id) -> cancel d id
    | Error msg ->
        Mutex.lock d.mu;
        d.n_errors <- d.n_errors + 1;
        Mutex.unlock d.mu;
        Events.emit d.events "parse_error" [ ("message", Events.S msg) ]

let drain d =
  Mutex.lock d.mu;
  while Atomic.get d.inflight > 0 do
    Condition.wait d.cv d.mu
  done;
  Mutex.unlock d.mu

let run_channel d ic =
  let t0 = now () in
  (try
     while true do
       handle_line d (input_line ic)
     done
   with End_of_file -> ());
  drain d;
  let c = counts d in
  let wall_s = now () -. t0 in
  Events.emit d.events "serve_done"
    [ ("accepted", Events.I c.accepted);
      ("completed", Events.I c.completed);
      ("cancelled", Events.I c.cancelled);
      ("errors", Events.I c.errors);
      ("rejected", Events.I c.rejected);
      ("wall_s", Events.F wall_s);
      ("req_per_s",
       Events.F (if wall_s > 0.0 then float_of_int c.accepted /. wall_s else 0.0))
    ];
  c
