(** Streaming survival analytics over cycles-to-death.

    An accumulator holds everything the fleet reports — survival
    staircase, lifetime quantiles, per-model tallies — in integer
    counters of fixed size (O(horizon + models)), so memory is
    independent of the number of devices folded in.  Because every
    field is an exact integer, {!merge} is associative and commutative
    and a sharded run folds to bit-identical results at any pool size
    or partition — the fleet engine's determinism rests on this.

    Lifetimes are complete cycles; a device alive at the horizon is
    {e censored} (lifetime known only as [>= horizon]), never counted
    as a death. *)

type t

val create : horizon:int -> models:string array -> t
(** Fresh accumulator for lifetimes observed against [horizon] and the
    given model labels (indexed as in the fleet spec).
    @raise Invalid_argument if [horizon < 1]. *)

val observe :
  t -> model_index:int -> Batsched_battery.Periodic.outcome -> unit
(** Fold one device's outcome in.  [Censored h] must carry the
    accumulator's horizon.
    @raise Invalid_argument on a foreign horizon or model index. *)

val merge : into:t -> t -> unit
(** Element-wise counter addition.
    @raise Invalid_argument on mismatched horizon or models. *)

val copy : t -> t

val n : t -> int
(** Devices folded in. *)

val censored : t -> int

val mean_cycles : t -> float
(** Mean observed lifetime (censored devices enter at the horizon, so
    this is a lower bound on the true mean); [nan] when empty. *)

val per_model : t -> (string * int * int * float) array
(** Per-model [(label, devices, censored, mean observed lifetime)] in
    spec order; the mean is [nan] for a model that drew no devices. *)

val quantile : t -> float -> int
(** [quantile t p] for [p] in [0, 100]: the smallest lifetime [c] such
    that at least [p]% of devices died within [c] cycles — exact, from
    the integer death counts, not a sketch.  When the rank falls into
    the censored mass the true quantile is unknown and the horizon is
    returned (a lower bound).
    @raise Invalid_argument outside [0, 100] or on an empty
    accumulator. *)

val survival : t -> (int * float) list
(** The survival staircase: pairs [(c, s)] where [s] is the fraction
    of devices whose lifetime is [>= c] cycles, one pair per lifetime
    at which deaths occurred (plus [(0, 1.)]), ascending.  Censored
    devices stay in the at-risk set throughout. *)

val checksum : t -> string
(** FNV-1a 64 over the canonical counter encoding, rendered as
    ["sv1-%016x"].  Two accumulators agree on the checksum iff every
    counter matches — the value CI pins to catch determinism
    regressions. *)

val to_json : t -> Buffer.t -> unit
(** Append the full report as one JSON object: totals, quantiles
    (p1/p5/p50/p90/p99), the survival staircase, per-model tallies and
    the checksum.  Deterministic: a function of the counters only. *)
