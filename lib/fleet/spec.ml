open Batsched_obs

type range = { lo : float; hi : float }

type law = Uniform | Fastest | Slowest

type model_spec =
  | Ideal
  | Peukert of { exponent : range; reference_current : range }
  | Rakhmatov of { beta : range; terms : int }
  | Kibam of { c : range; k_prime : range }
  | Pde of { beta : range; nodes : int; dt : float }

type weighted_model = {
  label : string;
  weight : float;
  model : model_spec;
}

type cycle_spec =
  | Graph of {
      name : string;
      graph : Batsched_taskgraph.Graph.t;
      law : law;
    }
  | Bursts of { count : range; current : range; duration : range }

type t = {
  horizon : int;
  alpha : range;
  soh : range;
  period_factor : range;
  models : weighted_model list;
  cycle : cycle_spec;
}

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* A range is either a bare number (constant) or {"min": a, "max": b}. *)
let range_of ~name j =
  match j with
  | Json.Num v -> { lo = v; hi = v }
  | Json.Obj _ -> begin
      match (Json.num_field "min" j, Json.num_field "max" j) with
      | Some lo, Some hi ->
          if hi < lo then fail "%s: max < min" name else { lo; hi }
      | _ -> fail "%s: expected min and max" name
    end
  | _ -> fail "%s: expected a number or {min, max}" name

let range_field ~name ?default j =
  match (Json.field name j, default) with
  | Some r, _ -> range_of ~name r
  | None, Some d -> d
  | None, None -> fail "missing required field %s" name

let positive ~name r =
  if r.lo <= 0.0 then fail "%s: must be positive" name else r

let model_of_json j =
  let label =
    match Json.str_field "model" j with
    | Some s -> s
    | None -> fail "models[]: missing model name"
  in
  let weight =
    match Json.num_field "weight" j with
    | Some w when w > 0.0 -> w
    | Some _ -> fail "%s: weight must be positive" label
    | None -> 1.0
  in
  let model =
    match label with
    | "ideal" -> Ideal
    | "peukert" ->
        Peukert
          { exponent =
              positive ~name:"peukert.exponent"
                (range_field ~name:"exponent"
                   ~default:{ lo = 1.2; hi = 1.2 } j);
            reference_current =
              positive ~name:"peukert.reference_current"
                (range_field ~name:"reference_current"
                   ~default:{ lo = 100.0; hi = 100.0 } j) }
    | "rakhmatov" ->
        Rakhmatov
          { beta =
              positive ~name:"rakhmatov.beta"
                (range_field ~name:"beta"
                   ~default:
                     { lo = Batsched_battery.Rakhmatov.default_beta;
                       hi = Batsched_battery.Rakhmatov.default_beta }
                   j);
            terms =
              (match Json.num_field "terms" j with
              | Some t when t >= 1.0 -> int_of_float t
              | Some _ -> fail "rakhmatov.terms: must be >= 1"
              | None -> Batsched_numeric.Series.default_terms) }
    | "kibam" ->
        let sub name default =
          positive ~name:("kibam." ^ name)
            (range_field ~name ~default j)
        in
        let c = sub "c" { lo = 0.5; hi = 0.5 } in
        if c.hi >= 1.0 then fail "kibam.c: must stay below 1";
        Kibam { c; k_prime = sub "k_prime" { lo = 0.05; hi = 0.05 } }
    | "pde" ->
        Pde
          { beta =
              positive ~name:"pde.beta"
                (range_field ~name:"beta"
                   ~default:
                     { lo = Batsched_battery.Rakhmatov.default_beta;
                       hi = Batsched_battery.Rakhmatov.default_beta }
                   j);
            nodes =
              (match Json.num_field "nodes" j with
              | Some n when n >= 8.0 -> int_of_float n
              | Some _ -> fail "pde.nodes: must be >= 8"
              | None -> 16);
            dt =
              (match Json.num_field "dt" j with
              | Some d when d > 0.0 -> d
              | Some _ -> fail "pde.dt: must be positive"
              | None -> 0.25) }
    | other -> fail "unknown model %S" other
  in
  { label; weight; model }

let cycle_of_json j =
  match Json.str_field "kind" j with
  | Some "graph" ->
      let name =
        match Json.str_field "graph" j with
        | Some g -> g
        | None -> fail "cycle: missing graph name"
      in
      let graph =
        match name with
        | "g2" -> Batsched_taskgraph.Instances.g2
        | "g3" -> Batsched_taskgraph.Instances.g3
        | other -> fail "cycle.graph: unknown instance %S" other
      in
      let law =
        match Json.str_field "law" j with
        | Some "uniform" | None -> Uniform
        | Some "fastest" -> Fastest
        | Some "slowest" -> Slowest
        | Some other -> fail "cycle.law: unknown law %S" other
      in
      Graph { name; graph; law }
  | Some "bursts" ->
      let count =
        positive ~name:"cycle.count"
          (range_field ~name:"count" ~default:{ lo = 1.0; hi = 3.0 } j)
      in
      let current =
        positive ~name:"cycle.current"
          (range_field ~name:"current" ~default:{ lo = 100.0; hi = 800.0 } j)
      in
      let duration =
        positive ~name:"cycle.duration"
          (range_field ~name:"duration" ~default:{ lo = 1.0; hi = 20.0 } j)
      in
      Bursts { count; current; duration }
  | Some other -> fail "cycle.kind: expected graph or bursts, got %S" other
  | None -> fail "cycle: missing kind"

let of_json j =
  try
    let horizon =
      match Json.num_field "horizon" j with
      | Some h when h >= 1.0 -> int_of_float h
      | Some _ -> fail "horizon: must be >= 1"
      | None -> 200
    in
    let alpha =
      positive ~name:"alpha"
        (range_field ~name:"alpha"
           ~default:
             { lo = Batsched_battery.Cell.itsy.Batsched_battery.Cell.alpha;
               hi = Batsched_battery.Cell.itsy.Batsched_battery.Cell.alpha }
           j)
    in
    let soh =
      positive ~name:"soh"
        (range_field ~name:"soh" ~default:{ lo = 1.0; hi = 1.0 } j)
    in
    let period_factor =
      range_field ~name:"period_factor" ~default:{ lo = 1.0; hi = 2.0 } j
    in
    if period_factor.lo < 1.0 then
      fail "period_factor: must be >= 1 (the cycle has to fit the period)";
    let models =
      match Json.field "models" j with
      | Some (Json.Arr (_ :: _ as ms)) -> List.map model_of_json ms
      | Some (Json.Arr []) -> fail "models: must not be empty"
      | Some _ -> fail "models: expected an array"
      | None -> fail "missing required field models"
    in
    let cycle =
      match Json.field "cycle" j with
      | Some c -> cycle_of_json c
      | None -> fail "missing required field cycle"
    in
    Ok { horizon; alpha; soh; period_factor; models; cycle }
  with Bad msg -> Error ("fleet spec: " ^ msg)

let of_file path =
  match Json.of_file path with
  | j -> of_json j
  | exception Json.Bad_json msg -> Error ("fleet spec: bad JSON: " ^ msg)
  | exception Sys_error msg -> Error ("fleet spec: " ^ msg)

let default =
  { horizon = 200;
    alpha = { lo = 30000.0; hi = 45000.0 };
    soh = { lo = 0.8; hi = 1.0 };
    period_factor = { lo = 1.2; hi = 2.5 };
    models =
      [ { label = "ideal"; weight = 0.5; model = Ideal };
        { label = "peukert";
          weight = 1.0;
          model =
            Peukert
              { exponent = { lo = 1.05; hi = 1.3 };
                reference_current = { lo = 100.0; hi = 100.0 } } };
        { label = "rakhmatov";
          weight = 2.0;
          model =
            Rakhmatov
              { beta = { lo = 0.2; hi = 0.6 };
                terms = Batsched_numeric.Series.default_terms } };
        { label = "kibam";
          weight = 1.0;
          model =
            Kibam
              { c = { lo = 0.3; hi = 0.7 };
                k_prime = { lo = 0.02; hi = 0.1 } } } ];
    (* sized so lifetimes spread across the default horizon: a mean
       draw (~1.5 bursts of ~150 mA for ~3 min) costs ~675 mA*min per
       cycle against alpha 30k-45k mA*min, i.e. dozens of cycles, while
       the lightest draws outlive the horizon and exercise censoring *)
    cycle =
      Bursts
        { count = { lo = 1.0; hi = 2.0 };
          current = { lo = 50.0; hi = 250.0 };
          duration = { lo = 1.0; hi = 5.0 } }
  }
