open Batsched_numeric
open Batsched_battery

type device = {
  index : int;
  model_index : int;
  periodic : Periodic.device;
}

let base ~seed = Splitmix.create seed

let uniform g (r : Spec.range) = r.Spec.lo +. ((r.Spec.hi -. r.Spec.lo) *. Splitmix.float01 g)

(* Weighted model choice: one float01 draw scaled to the total weight,
   resolved by a cumulative walk in spec order. *)
let pick_model g (models : Spec.weighted_model list) =
  let total = List.fold_left (fun a m -> a +. m.Spec.weight) 0.0 models in
  let u = Splitmix.float01 g *. total in
  let rec walk i acc = function
    | [] -> i - 1 (* float noise at the top edge: keep the last entry *)
    | m :: rest ->
        let acc = acc +. m.Spec.weight in
        if u < acc then i else walk (i + 1) acc rest
  in
  walk 0 0.0 models

let cycle_profile g (spec : Spec.cycle_spec) =
  match spec with
  | Spec.Graph { graph; law; _ } ->
      let tasks = Array.of_list (Batsched_taskgraph.Graph.tasks graph) in
      Profile.sequential_fn ~n:(Array.length tasks) (fun i ->
          let task = tasks.(i) in
          let col =
            match law with
            | Spec.Fastest -> 0
            | Spec.Slowest -> Batsched_taskgraph.Task.num_points task - 1
            | Spec.Uniform ->
                Splitmix.rand_below g
                  (Batsched_taskgraph.Task.num_points task)
          in
          let dp = Batsched_taskgraph.Task.point task col in
          ( dp.Batsched_taskgraph.Task.current,
            dp.Batsched_taskgraph.Task.duration ))
  | Spec.Bursts { count; current; duration } ->
      let n = Stdlib.max 1 (int_of_float (uniform g count)) in
      (* explicit loop: the per-burst draw order is part of the format *)
      let draws = Array.make n (0.0, 0.0) in
      for i = 0 to n - 1 do
        let c = uniform g current in
        let d = uniform g duration in
        draws.(i) <- (c, d)
      done;
      Profile.sequential_fn ~n (fun i -> draws.(i))

let device (spec : Spec.t) ~base:b i =
  if i < 0 then invalid_arg "Sampler.device: negative index";
  let g = Splitmix.substream b i in
  let model_index = pick_model g spec.Spec.models in
  let wm = List.nth spec.Spec.models model_index in
  (* model parameters are drawn before alpha even for the PDE, whose
     model value also needs alpha: remember the draws, build below *)
  let model_ctor =
    match wm.Spec.model with
    | Spec.Ideal -> `Ready Ideal.model
    | Spec.Peukert { exponent; reference_current } ->
        let exponent = uniform g exponent in
        let reference_current = uniform g reference_current in
        `Ready (Peukert.model ~exponent ~reference_current ())
    | Spec.Rakhmatov { beta; terms } ->
        `Ready (Rakhmatov.model ~terms ~beta:(uniform g beta) ())
    | Spec.Kibam { c; k_prime } ->
        let c = uniform g c in
        let k_prime = uniform g k_prime in
        (* KiBaM sigma is capacity-independent (the full battery starts
           at equilibrium and capacity cancels), so any placeholder
           capacity gives the same lifetime against the drawn alpha *)
        `Ready
          (Kibam.model
             ~params:(Kibam.make_params ~capacity:1.0 ~c ~k_prime)
             ())
    | Spec.Pde { beta; nodes; dt } ->
        let beta = uniform g beta in
        `Needs_alpha
          (fun alpha ->
            Diffusion.model
              ~params:(Diffusion.make_params ~nodes ~dt ~alpha ~beta ())
              ())
  in
  (* documented draw order: alpha, then soh, then cycle, then period
     factor — explicit lets because OCaml evaluates operands
     right-to-left *)
  let rated = uniform g spec.Spec.alpha in
  let soh = uniform g spec.Spec.soh in
  let alpha = rated *. soh in
  let cycle = cycle_profile g spec.Spec.cycle in
  let factor = uniform g spec.Spec.period_factor in
  let period = Profile.length cycle *. factor in
  let model =
    match model_ctor with `Ready m -> m | `Needs_alpha f -> f alpha
  in
  { index = i;
    model_index;
    periodic = { Periodic.model; alpha; period; cycle } }
