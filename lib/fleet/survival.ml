open Batsched_battery

type per_model = {
  mutable m_n : int;
  mutable m_censored : int;
  mutable m_total_cycles : int;
}

type t = {
  horizon : int;
  models : string array;
  deaths : int array;  (* deaths.(c) = devices whose lifetime is exactly c *)
  mutable n : int;
  mutable censored : int;
  mutable total_cycles : int;
  by_model : per_model array;
}

let create ~horizon ~models =
  if horizon < 1 then invalid_arg "Survival.create: horizon < 1";
  { horizon;
    models = Array.copy models;
    deaths = Array.make horizon 0;
    n = 0;
    censored = 0;
    total_cycles = 0;
    by_model =
      Array.init (Array.length models) (fun _ ->
          { m_n = 0; m_censored = 0; m_total_cycles = 0 }) }

let observe t ~model_index outcome =
  if model_index < 0 || model_index >= Array.length t.models then
    invalid_arg "Survival.observe: model index out of range";
  let pm = t.by_model.(model_index) in
  t.n <- t.n + 1;
  pm.m_n <- pm.m_n + 1;
  match outcome with
  | Periodic.Dies c ->
      if c < 0 || c >= t.horizon then
        invalid_arg "Survival.observe: death beyond the horizon";
      t.deaths.(c) <- t.deaths.(c) + 1;
      t.total_cycles <- t.total_cycles + c;
      pm.m_total_cycles <- pm.m_total_cycles + c
  | Periodic.Censored h ->
      if h <> t.horizon then
        invalid_arg "Survival.observe: foreign censoring horizon";
      t.censored <- t.censored + 1;
      t.total_cycles <- t.total_cycles + h;
      pm.m_censored <- pm.m_censored + 1;
      pm.m_total_cycles <- pm.m_total_cycles + h

let compatible a b =
  a.horizon = b.horizon
  && Array.length a.models = Array.length b.models
  && Array.for_all2 ( = ) a.models b.models

let merge ~into src =
  if not (compatible into src) then
    invalid_arg "Survival.merge: mismatched accumulators";
  for c = 0 to into.horizon - 1 do
    into.deaths.(c) <- into.deaths.(c) + src.deaths.(c)
  done;
  into.n <- into.n + src.n;
  into.censored <- into.censored + src.censored;
  into.total_cycles <- into.total_cycles + src.total_cycles;
  Array.iteri
    (fun i (pm : per_model) ->
      let dst = into.by_model.(i) in
      dst.m_n <- dst.m_n + pm.m_n;
      dst.m_censored <- dst.m_censored + pm.m_censored;
      dst.m_total_cycles <- dst.m_total_cycles + pm.m_total_cycles)
    src.by_model

let copy t =
  let c = create ~horizon:t.horizon ~models:t.models in
  merge ~into:c t;
  c

let n t = t.n

let censored t = t.censored

let mean_cycles t =
  if t.n = 0 then Float.nan
  else float_of_int t.total_cycles /. float_of_int t.n

let per_model t =
  Array.mapi
    (fun i pm ->
      let mean =
        if pm.m_n = 0 then Float.nan
        else float_of_int pm.m_total_cycles /. float_of_int pm.m_n
      in
      (t.models.(i), pm.m_n, pm.m_censored, mean))
    t.by_model

let quantile t p =
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg "Survival.quantile: p outside [0, 100]";
  if t.n = 0 then invalid_arg "Survival.quantile: empty accumulator";
  let rank =
    Stdlib.max 1
      (Stdlib.min t.n (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n))))
  in
  let rec walk c acc =
    if c >= t.horizon then t.horizon
    else begin
      let acc = acc + t.deaths.(c) in
      if acc >= rank then c else walk (c + 1) acc
    end
  in
  walk 0 0

let survival t =
  let nf = float_of_int (Stdlib.max 1 t.n) in
  let rec walk c alive acc =
    if c >= t.horizon then List.rev acc
    else begin
      let d = t.deaths.(c) in
      if d = 0 then walk (c + 1) alive acc
      else begin
        let alive = alive - d in
        (* lifetime exactly c: the drop lands between c and c + 1, so
           the fraction with lifetime >= c + 1 is alive/n *)
        walk (c + 1) alive ((c + 1, float_of_int alive /. nf) :: acc)
      end
    end
  in
  walk 0 t.n [ (0, 1.0) ]

(* FNV-1a 64 over a canonical little-endian encoding of every counter.
   Not cryptographic — a cheap fingerprint CI can pin. *)
let checksum t =
  let h = ref 0xCBF29CE484222325L in
  let feed v =
    let x = ref v in
    for _ = 0 to 7 do
      let byte = Int64.to_int (Int64.logand !x 0xFFL) in
      h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) 0x100000001B3L;
      x := Int64.shift_right_logical !x 8
    done
  in
  let feed_int v = feed (Int64.of_int v) in
  feed_int t.horizon;
  feed_int t.n;
  feed_int t.censored;
  feed_int t.total_cycles;
  Array.iter feed_int t.deaths;
  Array.iter
    (fun pm ->
      feed_int pm.m_n;
      feed_int pm.m_censored;
      feed_int pm.m_total_cycles)
    t.by_model;
  Printf.sprintf "sv1-%016Lx" !h

let to_json t buf =
  let open Printf in
  let add fmt = ksprintf (Buffer.add_string buf) fmt in
  (* non-finite means "undefined" (empty tally): emit null, keep the
     output parseable *)
  let num v = if Float.is_finite v then sprintf "%.6g" v else "null" in
  add "{\"devices\": %d, \"censored\": %d, \"horizon\": %d" t.n t.censored
    t.horizon;
  add ", \"mean_cycles\": %s"
    (num
       (if t.n = 0 then Float.nan
        else float_of_int t.total_cycles /. float_of_int t.n));
  if t.n > 0 then begin
    add ", \"quantiles\": {";
    List.iteri
      (fun i (label, p) ->
        add "%s\"%s\": %d" (if i = 0 then "" else ", ") label (quantile t p))
      [ ("p1", 1.0); ("p5", 5.0); ("p50", 50.0); ("p90", 90.0);
        ("p99", 99.0) ];
    add "}"
  end;
  add ", \"survival\": [";
  List.iteri
    (fun i (c, s) -> add "%s[%d, %.6g]" (if i = 0 then "" else ", ") c s)
    (survival t);
  add "]";
  add ", \"models\": [";
  Array.iteri
    (fun i pm ->
      add "%s{\"model\": \"%s\", \"devices\": %d, \"censored\": %d"
        (if i = 0 then "" else ", ")
        (Batsched_obs.Json.escape_string t.models.(i))
        pm.m_n pm.m_censored;
      add ", \"mean_cycles\": %s}"
        (num
           (if pm.m_n = 0 then Float.nan
            else float_of_int pm.m_total_cycles /. float_of_int pm.m_n)))
    t.by_model;
  add "]";
  add ", \"checksum\": \"%s\"}" (checksum t)
