(** Fleet specification: the distributions a simulated device
    population is drawn from.

    A spec is parsed from a JSON file (see EXPERIMENTS.md for the
    schema and a walkthrough).  Every stochastic knob is a {!range} —
    written in JSON either as a plain number (a constant) or as
    [{"min": a, "max": b}] — sampled uniformly per device.  The spec
    also fixes the endurance horizon and the per-cycle workload shape:
    either a task graph whose design points are re-drawn per device, or
    synthetic bursts. *)

type range = { lo : float; hi : float }
(** Closed interval sampled uniformly; [lo = hi] pins a constant. *)

(** How a device picks the design point of each task in a graph
    cycle. *)
type law =
  | Uniform  (** independent uniform column per task *)
  | Fastest  (** column 0 everywhere: highest current, shortest cycle *)
  | Slowest  (** last column everywhere: lowest current, longest cycle *)

type model_spec =
  | Ideal
  | Peukert of { exponent : range; reference_current : range }
  | Rakhmatov of { beta : range; terms : int }
  | Kibam of { c : range; k_prime : range }
  | Pde of { beta : range; nodes : int; dt : float }
      (** diffusion PDE; [nodes]/[dt] are discretization knobs, fixed
          per spec (default 16 nodes, dt 0.25 — coarser than the
          library default, deliberately: fleet sweeps trade per-device
          fidelity for population size) *)

type weighted_model = {
  label : string;   (** name used in reports and histogram keys *)
  weight : float;   (** relative draw probability, > 0 *)
  model : model_spec;
}

type cycle_spec =
  | Graph of {
      name : string;  (** ["g2"] or ["g3"] — the bundled instances *)
      graph : Batsched_taskgraph.Graph.t;
      law : law;
    }
      (** one cycle = the graph's tasks run back-to-back in id order at
          the drawn design points *)
  | Bursts of { count : range; current : range; duration : range }
      (** one cycle = [count] back-to-back constant-current bursts
          ([count] is rounded down after sampling) *)

type t = {
  horizon : int;          (** censoring horizon, cycles (default 200) *)
  alpha : range;          (** rated capacity parameter, mA*min *)
  soh : range;            (** state-of-health factor scaling alpha *)
  period_factor : range;  (** period = factor * cycle length; >= 1 *)
  models : weighted_model list;
  cycle : cycle_spec;
}

val of_json : Batsched_obs.Json.t -> (t, string) result
(** Validate and compile a parsed JSON spec.  Unknown model names,
    empty model lists, non-positive weights, inverted ranges and a
    [period_factor] allowing [< 1] are all rejected with a message
    naming the offending field. *)

val of_file : string -> (t, string) result
(** [of_json] on a file's contents; I/O and parse errors are returned
    as [Error] too. *)

val default : t
(** A small built-in spec (g2 cycle, uniform law, all four analytic
    models) used by tests and as a template. *)
