open Batsched_numeric
open Batsched_obs

let model_labels (spec : Spec.t) =
  Array.of_list (List.map (fun m -> m.Spec.label) spec.Spec.models)

let run ?(pool = Pool.sequential) ?(events = Events.noop) ?(block = 256)
    ~(spec : Spec.t) ~devices ~seed () =
  if devices < 0 then invalid_arg "Engine.run: negative device count";
  if block < 1 then invalid_arg "Engine.run: block must be positive";
  let labels = model_labels spec in
  let base = Sampler.base ~seed in
  let total = Survival.create ~horizon:spec.Spec.horizon ~models:labels in
  let mutex = Mutex.create () in
  let completed = ref 0 in
  let events_on = Events.is_active events in
  let hist_on = Histogram.enabled () in
  Pool.for_range pool ~n:devices (fun lo hi ->
      let acc = Survival.create ~horizon:spec.Spec.horizon ~models:labels in
      let probe = Probe.local () in
      let b = ref lo in
      while !b < hi do
        let e = Stdlib.min hi (!b + block) in
        let count = e - !b in
        (* materialize the block once: Batch.run pulls each device a
           single time, and the histogram observation below reuses the
           same sample *)
        let sampled = Array.make count None in
        let device j =
          let d = Sampler.device spec ~base (!b + j) in
          sampled.(j) <- Some d;
          d.Sampler.periodic
        in
        let results =
          Batsched_battery.Periodic.Batch.run ~max_cycles:spec.Spec.horizon
            ~n:count ~device ()
        in
        let deaths = ref 0 in
        Array.iteri
          (fun j (r : Batsched_battery.Periodic.Batch.result) ->
            let d =
              match sampled.(j) with Some d -> d | None -> assert false
            in
            Survival.observe acc ~model_index:d.Sampler.model_index
              r.Batsched_battery.Periodic.Batch.outcome;
            (match r.Batsched_battery.Periodic.Batch.outcome with
            | Batsched_battery.Periodic.Dies _ -> incr deaths
            | Batsched_battery.Periodic.Censored _ -> ());
            if hist_on then
              Histogram.observe
                ("fleet/eol_cycles/" ^ labels.(d.Sampler.model_index))
                (float_of_int
                   (Batsched_battery.Periodic.cycles
                      r.Batsched_battery.Periodic.Batch.outcome)))
          results;
        Probe.bump_named probe "fleet/devices" count;
        Probe.bump_named probe "fleet/deaths" !deaths;
        Probe.bump_named probe "fleet/censored" (count - !deaths);
        if events_on then begin
          let done_now =
            Mutex.lock mutex;
            completed := !completed + count;
            let v = !completed in
            Mutex.unlock mutex;
            v
          in
          Events.emit events "fleet-block"
            [ ("lo", Events.I !b); ("hi", Events.I e);
              ("done", Events.I done_now); ("total", Events.I devices);
              ("worker", Events.I (Pool.worker_index ())) ]
        end;
        b := e
      done;
      Mutex.lock mutex;
      Survival.merge ~into:total acc;
      Mutex.unlock mutex);
  if events_on then
    Events.emit events "fleet-done"
      [ ("devices", Events.I (Survival.n total));
        ("censored", Events.I (Survival.censored total));
        ("checksum", Events.S (Survival.checksum total)) ];
  total
