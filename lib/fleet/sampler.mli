(** Deterministic device sampling.

    Device [i] of a fleet run is a pure function of the spec, the run
    seed and [i]: each device draws from its own splitmix64 substream
    ([Batsched_numeric.Splitmix.substream base i]), so the sample is
    independent of which pool worker materializes it, of batching, and
    of every other device — the construction that makes fleet results
    bit-identical across pool sizes.

    The draw order within a device's substream is fixed and part of the
    format: model choice, model parameters (in the order the fields are
    listed in {!Spec.model_spec}), alpha, state of health, cycle
    (per-task columns or burst count then per-burst current and
    duration), period factor.  Changing the order changes every sample
    for a given seed, so treat it like a wire format. *)

type device = {
  index : int;
  model_index : int;  (** index into the spec's [models] list *)
  periodic : Batsched_battery.Periodic.device;
      (** model, effective alpha (rated alpha times state of health),
          period and cycle profile, ready for
          {!Batsched_battery.Periodic.Batch.run} *)
}

val base : seed:int -> Batsched_numeric.Splitmix.t
(** The run-level generator state all per-device substreams derive
    from. *)

val device : Spec.t -> base:Batsched_numeric.Splitmix.t -> int -> device
(** [device spec ~base i] materializes device [i].  Pure: [base] is
    not advanced, and repeated calls return identical samples.
    @raise Invalid_argument on a negative index. *)
