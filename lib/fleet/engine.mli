(** Sharded fleet endurance runs.

    Drives {!Sampler} and {!Batsched_battery.Periodic.Batch} across a
    work-stealing pool: the device index range is dealt to workers in
    adaptive spans, each span materializes its devices in fixed-size
    blocks, estimates their lifetimes with the O(cycles) batch kernel,
    and folds outcomes into a span-local {!Survival} accumulator merged
    into the run total under a mutex at span end.  Nothing per-device
    is ever retained — peak memory is O(pool * (horizon + block)) —
    and because device samples are index-pure and the accumulators are
    integer-exact, the returned {!Survival.t} is bit-identical at
    every pool size. *)

val run :
  ?pool:Batsched_numeric.Pool.t ->
  ?events:Batsched_obs.Events.t ->
  ?block:int ->
  spec:Spec.t ->
  devices:int ->
  seed:int ->
  unit ->
  Survival.t
(** [run ~spec ~devices ~seed ()] estimates the lifetime of [devices]
    sampled devices.  [pool] defaults to the sequential pool; [block]
    (default 256) is the number of devices compiled per batch-kernel
    call within a span.  Progress is streamed to [events] (kind
    ["fleet-block"], one record per completed block, plus a final
    ["fleet-done"] with the checksum); per-model end-of-life cycle
    counts are observed into the [Batsched_obs.Histogram] registry as
    ["fleet/eol_cycles/<model>"] when it is enabled, and device/death
    totals are counted into [Batsched_numeric.Probe]'s named counters
    (["fleet/devices"], ["fleet/deaths"], ["fleet/censored"]).
    @raise Invalid_argument on negative [devices] or non-positive
    [block]. *)
