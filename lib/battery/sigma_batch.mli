(** Population-batched sigma evaluation (structure of arrays).

    Population searches — multistart screening, annealing reheats,
    evolutionary steps — cost many candidate schedules against one
    model at once.  Evaluating them one [Profile.t] at a time pays a
    profile allocation and the full series bookkeeping per candidate;
    this module lays the whole population out in flat row-major float
    arrays (candidate [p]'s interval [k] at index [p * n + k]) and
    hands contiguous candidate ranges to the model's
    {!Model.batch} kernel, which shares the exponential-series
    bookkeeping across the sweep (one [exp] per suffix point for
    Rakhmatov, one per interval for KiBaM) and allocates nothing per
    candidate.  Models without a kernel (the diffusion PDE) fall back
    to the sequential full path per candidate, counted separately.

    Ranges are sharded across a {!Pool} when one is supplied: each
    worker writes only its candidates' [sigmas] slots, so the fan-out
    is race-free and bit-identical to the sequential sweep.

    The workspace is reusable: arrays grow geometrically across
    {!eval} calls and are never shrunk.  Counters:
    [Probe.batch_evals] per sweep, [Probe.batch_candidates] /
    [Probe.batch_fallbacks] per candidate depending on the path. *)

open Batsched_numeric

type t

val create : ?pool:Pool.t -> Model.t -> t
(** A reusable workspace for the given model.  [pool] defaults to
    {!Pool.sequential}. *)

val eval :
  t ->
  pop:int ->
  n:int ->
  current:(int -> int -> float) ->
  duration:(int -> int -> float) ->
  unit
(** [eval t ~pop ~n ~current ~duration] evaluates [pop] candidate
    schedules of [n] back-to-back intervals each, where candidate [p]'s
    interval [k] draws [current p k] amps for [duration p k] minutes.
    Results are read back with {!sigma} / {!finish}.  Agrees with
    [Model.sigma_end] on the equivalent sequential profile to
    float-accumulation noise.
    @raise Invalid_argument on negative [pop]/[n] or a negative or
    non-finite interval field. *)

val sigma : t -> int -> float
(** Candidate [p]'s sigma at its makespan, from the last {!eval}.
    @raise Invalid_argument out of range. *)

val finish : t -> int -> float
(** Candidate [p]'s makespan.
    @raise Invalid_argument out of range. *)

val model : t -> Model.t

val pop : t -> int
(** Population of the last {!eval} (0 before the first). *)

val width : t -> int
(** Interval count per candidate of the last {!eval}. *)
