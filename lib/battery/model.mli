(** Battery model interface.

    A model maps a discharge profile and an observation instant to the
    *apparent charge lost* sigma (mA*min).  A battery with capacity
    parameter alpha dies at the first instant where sigma reaches alpha.
    Three implementations ship with the library: {!Ideal}, {!Peukert}
    and {!Rakhmatov} (the paper's cost function). *)

type incremental = {
  term : current:float -> duration:float -> tail:float -> float;
  (** Per-interval contribution to sigma {e at the end of a sequential
      profile}, in suffix-time coordinates: [tail] is the total load
      duration scheduled strictly after the interval.  The contract is

      {[ sigma (sequential ps) ~at:(length (sequential ps))
           = sum_k (term ~current:I_k ~duration:D_k ~tail:tail_k) ]}

      (up to float accumulation noise), where
      [tail_k = sum_{j>k} D_j].  The decomposition holds for the models
      whose sigma is a sum of independent per-interval terms at the
      observation instant — which is exactly what makes delta
      evaluation of local-search moves possible: an adjacent swap
      perturbs two terms, a duration change at position [i] perturbs
      the terms at [0..i] only.  A term with [duration = 0] must be
      exactly [0.].  Only meaningful for gapless back-to-back profiles
      observed at their makespan. *)
  tail_sensitive : bool;
  (** Whether [term] actually reads [tail].  [false] (ideal, Peukert —
      sigma is a makespan-independent sum) lets the delta evaluator
      skip recomputing unchanged terms whose tails moved; [true]
      (Rakhmatov–Vrudhula — the recovery series depends on how long the
      interval has to relax before the observation instant) forces the
      [0..i] prefix walk on duration changes. *)
}
(** First-class incremental evaluation interface.  See
    {!Delta} for the mutable schedule state built on top of it. *)

type t = {
  name : string;
  (** Short identifier used in reports. *)
  sigma : Profile.t -> at:float -> float;
  (** [sigma profile ~at] is the apparent charge lost by time [at]
      (minutes).  Load beyond [at] is ignored.  Note that sigma need
      {e not} be monotone in [at]: for the Rakhmatov–Vrudhula model the
      unavailable-charge component recovers during rest (or light load
      after heavy load), so sigma can dip — which is why lifetime
      estimation looks for the {e first} crossing of alpha. *)
  incremental : incremental option;
  (** The per-interval decomposition of [sigma] at the makespan, when
      the model admits one; [None] (KiBaM, the diffusion PDE — stateful
      models whose sigma does not decompose per interval) makes the
      delta evaluator fall back to a full re-evaluation per candidate
      move. *)
}

val sigma_end : t -> Profile.t -> float
(** [sigma_end m p] evaluates sigma at the end of the profile — the
    paper's "battery capacity used" figure of merit for a schedule. *)
