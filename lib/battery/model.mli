(** Battery model interface.

    A model maps a discharge profile and an observation instant to the
    *apparent charge lost* sigma (mA*min).  A battery with capacity
    parameter alpha dies at the first instant where sigma reaches alpha.
    Five implementations ship with the library: {!Ideal}, {!Peukert},
    {!Rakhmatov} (the paper's cost function), {!Kibam} and the
    {!Diffusion} PDE reference. *)

type incremental = {
  term : current:float -> duration:float -> tail:float -> float;
  (** Per-interval contribution to sigma {e at the end of a sequential
      profile}, in suffix-time coordinates: [tail] is the total load
      duration scheduled strictly after the interval.  The contract is

      {[ sigma (sequential ps) ~at:(length (sequential ps))
           = sum_k (term ~current:I_k ~duration:D_k ~tail:tail_k) ]}

      (up to float accumulation noise), where
      [tail_k = sum_{j>k} D_j].  The decomposition holds for the models
      whose sigma is a sum of independent per-interval terms at the
      observation instant — which is exactly what makes delta
      evaluation of local-search moves possible: an adjacent swap
      perturbs two terms, a duration change at position [i] perturbs
      the terms at [0..i] only.  A term with [duration = 0] must be
      exactly [0.].  Only meaningful for gapless back-to-back profiles
      observed at their makespan. *)
  tail_sensitive : bool;
  (** Whether [term] actually reads [tail].  [false] (ideal, Peukert —
      sigma is a makespan-independent sum) lets the delta evaluator
      skip recomputing unchanged terms whose tails moved; [true]
      (Rakhmatov–Vrudhula, KiBaM — the recovery/relaxation component
      depends on how long the interval has to relax before the
      observation instant) forces the [0..i] prefix walk on duration
      changes. *)
}
(** First-class incremental evaluation interface.  See
    {!Delta} for the mutable schedule state built on top of it. *)

type stepper_ops = {
  start : float array -> unit;
  (** Write the fully-charged initial state into the buffer. *)
  advance : float array -> current:float -> duration:float -> unit;
  (** Evolve the state in place through one constant-current interval.
      [duration = 0] must leave the state bit-identical. *)
  observe : float array -> float;
  (** Sigma at the instant the state describes. *)
}
type decay = {
  rates : float array;
  (** The distinct relaxation rates [lambda_t] (1/minutes) of the
      model's memory, all [> 0].  Empty for memoryless models (ideal,
      Peukert). *)
  weights : current:float -> duration:float -> float array -> unit;
  (** [weights ~current ~duration buf] writes the channel amplitudes
      [w_t(I, D)] into [buf] (length [>= Array.length rates]). *)
  charge : current:float -> duration:float -> float;
  (** The tail-independent part of the interval's contribution. *)
}
(** Exponential-channel decomposition of the per-interval term: the
    contract is

    {[ term ~current ~duration ~tail
         = charge ~current ~duration
           + sum_t (w_t (current, duration) *. exp (-. rates.(t) *. tail)) ]}

    for {e any} observation instant at or after the interval's end —
    [tail] is wall-clock time from interval end to observation, and the
    identity holds across idle gaps too (rest only decays the channels,
    it forces nothing).  This is strictly stronger than {!incremental}
    (which only speaks at the makespan of a gapless profile): exposing
    the channel structure is what lets {!Periodic} telescope identical
    repeated cycles into per-channel geometric series and advance a
    whole mission in O(1) per cycle.  Models whose sigma is a sum of
    such terms from a full battery: ideal and Peukert (no channels),
    KiBaM (one channel, the diagonalized bound-well disequilibrium),
    Rakhmatov–Vrudhula (one channel per truncated series term).  The
    diffusion PDE has no finite channel set and uses {!stepper}
    instead. *)

(** One integration context.  The float-array state representation is
    what lets {!Delta} snapshot and restore checkpoints with flat
    [Array.blit]s, no per-checkpoint allocation. *)

type stepper = {
  state_dim : int;
  (** Number of floats in a state vector. *)
  fresh : unit -> stepper_ops;
  (** Allocate a context (scratch buffers etc.).  Contexts are not
      shared across domains; each evaluator calls [fresh] once. *)
}
(** Checkpointable sequential integration, for stateful models whose
    sigma does {e not} decompose per interval (the diffusion PDE).
    {!Delta} snapshots the state every k intervals so a candidate move
    at position [i] re-integrates only the suffix from the preceding
    checkpoint — O(n/k + stride) instead of O(n) per move — while
    remaining bit-identical to a from-scratch integration. *)

type batch = {
  batch_run :
    n:int ->
    currents:float array ->
    durations:float array ->
    tails:float array ->
    sigmas:float array ->
    lo:int ->
    hi:int ->
    unit;
  (** Structure-of-arrays population kernel.  The arrays hold one row of
      [n] floats per candidate (row-major; candidate [p]'s interval [k]
      lives at index [p*n + k]); [tails.(p*n + k)] is the suffix
      duration after interval [k], computed by plain backward adds so
      that [tails.(i) = durations.(i+1) +. tails.(i+1)] bit-exactly.
      Writes the end-of-profile sigma of candidates [lo..hi-1] into
      [sigmas] (one float per candidate, indexed by candidate).  Must
      agree with [sigma] on the equivalent sequential profile to
      float-accumulation noise, and must not allocate per candidate —
      the point is to share series bookkeeping (one [exp] per suffix
      point) across the population. *)
}
(** Batched evaluation for population searches; see {!Sigma_batch}. *)

type t = {
  name : string;
  (** Short identifier used in reports. *)
  sigma : Profile.t -> at:float -> float;
  (** [sigma profile ~at] is the apparent charge lost by time [at]
      (minutes).  Load beyond [at] is ignored.  Note that sigma need
      {e not} be monotone in [at]: for the Rakhmatov–Vrudhula model the
      unavailable-charge component recovers during rest (or light load
      after heavy load), so sigma can dip — which is why lifetime
      estimation looks for the {e first} crossing of alpha. *)
  incremental : incremental option;
  (** The per-interval decomposition of [sigma] at the makespan, when
      the model admits one (ideal, Peukert, Rakhmatov–Vrudhula, KiBaM
      — for KiBaM the two-well affine maps diagonalize in suffix-time
      coordinates, see DESIGN.md §11). *)
  stepper : stepper option;
  (** Checkpointable integration for models with state but no
      per-interval decomposition (the diffusion PDE).  The delta
      evaluator prefers [incremental], then [stepper], then falls back
      to a counted full re-evaluation per candidate move. *)
  batch : batch option;
  (** Population-batched kernel, when one exists; {!Sigma_batch} falls
      back to sequential [sigma] calls otherwise. *)
  decay : decay option;
  (** Exponential-channel structure of the per-interval term, when the
      model admits one; {!Periodic}'s linear-time endurance kernel
      prefers [decay], then [stepper], then falls back to the quadratic
      full-history path. *)
}

val sigma_end : t -> Profile.t -> float
(** [sigma_end m p] evaluates sigma at the end of the profile — the
    paper's "battery capacity used" figure of merit for a schedule. *)
