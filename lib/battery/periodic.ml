open Batsched_numeric

exception Unsustainable of float

type outcome = Dies of int | Censored of int

let cycles = function Dies n -> n | Censored n -> n

let default_max_cycles = 500

let check_inputs ~alpha ~period cycle =
  if not (alpha > 0.0) then invalid_arg "Periodic: alpha must be positive";
  if not (period > 0.0) then invalid_arg "Periodic: period must be positive";
  if Profile.length cycle > period +. 1e-9 then
    invalid_arg "Periodic: cycle longer than the period"

type device = {
  model : Model.t;
  alpha : float;
  period : float;
  cycle : Profile.t;
}

(* The peak of sigma inside a cycle occurs at one of its active-interval
   end points (sigma relaxes during idle), so death within cycle k is
   detected by probing those ends against the history built so far. *)

(* Reference path: materialize the growing full history and probe it
   with the model's own [sigma].  O(cycles^2) interval work — kept
   verbatim from the original implementation as the oracle the property
   tests compare the fast kernels against, and as the fallback for
   models exposing neither [decay] nor [stepper]. *)
let reference_run ~max_cycles ~model ~alpha ~period cycle =
  let base =
    List.map
      (fun (iv : Profile.interval) ->
        (iv.Profile.start, iv.Profile.duration, iv.Profile.current))
      (Profile.intervals cycle)
  in
  let rec go k acc =
    if k >= max_cycles then (Censored max_cycles, Float.nan)
    else begin
      let offset = float_of_int k *. period in
      let shifted = List.map (fun (s, d, c) -> (s +. offset, d, c)) base in
      let profile = Profile.of_intervals (List.rev_append acc shifted) in
      let fatal =
        List.find_map
          (fun (s, d, _) ->
            let sg = model.Model.sigma profile ~at:(s +. d) in
            if sg >= alpha then Some sg else None)
          shifted
      in
      match fatal with
      | Some sg -> (Dies k, sg)
      | None -> go (k + 1) (List.rev_append shifted acc)
    end
  in
  go 0 []

let cycles_to_death_reference ?(max_cycles = default_max_cycles) ~model ~alpha
    ~period cycle =
  check_inputs ~alpha ~period cycle;
  match reference_run ~max_cycles ~model ~alpha ~period cycle with
  | Dies 0, sg -> raise (Unsustainable sg)
  | outcome, _ -> outcome

module Batch = struct
  type result = { outcome : outcome; fatal_sigma : float }

  (* Per-device endurance state, compiled once at setup so the per-cycle
     sweep does constant work per device.

     [Channels] is the closed form for models with a [Model.decay]
     decomposition.  Write e_j for the end time of the cycle's j-th
     interval and lambda_t for the channel rates.  Sigma probed at the
     end of interval j of cycle k is

       sigma(k, j) = k*Q + base_j + sum_t b_{j,t} * g_t(k)

     where Q is the full-cycle charge, base_j bundles the current
     cycle's own contribution (prefix charge plus intra-cycle channel
     terms, both independent of k), b_{j,t} is the channel-t
     contribution of one complete cycle exactly one period in the past,
     and g_t(k) = sum_{d=0}^{k-1} rho_t^d with rho_t = e^{-lambda_t *
     period} telescopes the geometric decay of all k prior cycles.  The
     accumulator update g_t <- 1 + rho_t * g_t after each survived
     cycle is the whole per-cycle cost: O(probes * channels) flops and
     zero [exp]s.  Every exponent evaluated at setup is <= ~0 (the
     cycle fits in the period), so nothing can overflow.

     [Carried] advances a [Model.stepper] state through the mission
     once instead of re-integrating the whole history per probe —
     O(cycles) integration work total instead of O(cycles^2).  The
     arithmetic deliberately mirrors the reference probe ([run_to]
     targets computed as [start +. offset] and spans as differences
     against the carried clock), because the reference's from-scratch
     integration for any probe performs exactly a prefix of the carried
     advance sequence: the two paths are bit-identical, not just
     close. *)
  type channels_state = {
    nprobe : int;
    nterm : int;
    q : float;
    base : float array;  (* nprobe *)
    b : float array;     (* nprobe * nterm, row-major by probe *)
    rho : float array;   (* nterm *)
    g : float array;     (* nterm; mutable geometric accumulator *)
  }

  type carried_state = {
    ops : Model.stepper_ops;
    u : float array;
    starts : float array;
    durations : float array;
    currents : float array;
    mutable clock : float;
  }

  type compiled =
    | Channels of channels_state
    | Carried of carried_state
    | Resolved  (* outcome computed at setup via the reference path *)

  let collect_intervals cycle =
    let n = Profile.num_intervals cycle in
    let starts = Array.make n 0.0 in
    let durations = Array.make n 0.0 in
    let currents = Array.make n 0.0 in
    let i = ref 0 in
    Profile.fold cycle ~init:() ~f:(fun () ~start ~duration ~current ->
        starts.(!i) <- start;
        durations.(!i) <- duration;
        currents.(!i) <- current;
        incr i);
    (starts, durations, currents)

  let compile_channels (dc : Model.decay) ~period ~starts ~durations ~currents
      =
    let e = Array.length starts in
    let t = Array.length dc.Model.rates in
    let ends = Array.init e (fun j -> starts.(j) +. durations.(j)) in
    let charges =
      Array.init e (fun i ->
          dc.Model.charge ~current:currents.(i) ~duration:durations.(i))
    in
    let w = Array.make (Stdlib.max 1 (e * t)) 0.0 in
    let buf = Array.make (Stdlib.max 1 t) 0.0 in
    for i = 0 to e - 1 do
      dc.Model.weights ~current:currents.(i) ~duration:durations.(i) buf;
      Array.blit buf 0 w (i * t) t
    done;
    let q = ref 0.0 in
    Array.iter (fun c -> q := !q +. c) charges;
    let base = Array.make (Stdlib.max 1 e) 0.0 in
    let b = Array.make (Stdlib.max 1 (e * t)) 0.0 in
    let prefix = ref 0.0 in
    for j = 0 to e - 1 do
      prefix := !prefix +. charges.(j);
      let a = ref 0.0 in
      for i = 0 to j do
        (* ends.(j) - ends.(i) >= 0 for i <= j: sorted, non-overlapping *)
        for tt = 0 to t - 1 do
          a :=
            !a
            +. w.((i * t) + tt)
               *. exp (-.dc.Model.rates.(tt) *. (ends.(j) -. ends.(i)))
        done
      done;
      base.(j) <- !prefix +. !a;
      for tt = 0 to t - 1 do
        let s = ref 0.0 in
        for i = 0 to e - 1 do
          (* period + e_j - e_i >= 0 up to the 1e-9 fit tolerance: the
             whole cycle sits within one period *)
          s :=
            !s
            +. w.((i * t) + tt)
               *. exp
                    (-.dc.Model.rates.(tt)
                    *. (period +. ends.(j) -. ends.(i)))
        done;
        b.((j * t) + tt) <- !s
      done
    done;
    let rho = Array.map (fun r -> exp (-.r *. period)) dc.Model.rates in
    Channels
      { nprobe = e;
        nterm = t;
        q = !q;
        base;
        b;
        rho;
        g = Array.make (Stdlib.max 1 t) 0.0 }

  (* One cycle of one device: probe every interval end, return the
     first fatal sigma, advance the state only on survival (a dead
     device is never stepped again, so leaving its state mid-cycle is
     fine). *)
  let step_channels d ~alpha ~k =
    let kf = float_of_int k in
    let rec probe j =
      if j >= d.nprobe then None
      else begin
        let s = ref ((kf *. d.q) +. d.base.(j)) in
        for tt = 0 to d.nterm - 1 do
          s := !s +. (d.b.((j * d.nterm) + tt) *. d.g.(tt))
        done;
        if !s >= alpha then Some !s else probe (j + 1)
      end
    in
    match probe 0 with
    | Some _ as fatal -> fatal
    | None ->
        for tt = 0 to d.nterm - 1 do
          d.g.(tt) <- 1.0 +. (d.rho.(tt) *. d.g.(tt))
        done;
        None

  let step_carried c ~alpha ~k ~period =
    let offset = float_of_int k *. period in
    let run_to t ~current =
      if t > c.clock then begin
        c.ops.Model.advance c.u ~current ~duration:(t -. c.clock);
        c.clock <- t
      end
    in
    let e = Array.length c.starts in
    let rec probe j =
      if j >= e then None
      else begin
        let s_abs = c.starts.(j) +. offset in
        run_to s_abs ~current:0.0;
        run_to (s_abs +. c.durations.(j)) ~current:c.currents.(j);
        let sg = c.ops.Model.observe c.u in
        if sg >= alpha then Some sg else probe (j + 1)
      end
    in
    probe 0

  let run ?(max_cycles = default_max_cycles) ~n ~device () =
    if n < 0 then invalid_arg "Periodic.Batch.run: negative device count";
    let results =
      Array.make n { outcome = Censored max_cycles; fatal_sigma = Float.nan }
    in
    if n = 0 then results
    else begin
      let probe = Probe.local () in
      let compiled = Array.make n Resolved in
      let alphas = Array.make n 0.0 in
      let periods = Array.make n 0.0 in
      let alive = Array.make n 0 in
      let nalive = ref 0 in
      for i = 0 to n - 1 do
        let dv = device i in
        check_inputs ~alpha:dv.alpha ~period:dv.period dv.cycle;
        alphas.(i) <- dv.alpha;
        periods.(i) <- dv.period;
        match (dv.model.Model.decay, dv.model.Model.stepper) with
        | Some dc, _ ->
            let starts, durations, currents = collect_intervals dv.cycle in
            compiled.(i) <-
              compile_channels dc ~period:dv.period ~starts ~durations
                ~currents;
            alive.(!nalive) <- i;
            incr nalive;
            Probe.bump_named probe "periodic/channel_devices" 1
        | None, Some sp ->
            let ops = sp.Model.fresh () in
            let u = Array.make sp.Model.state_dim 0.0 in
            ops.Model.start u;
            let starts, durations, currents = collect_intervals dv.cycle in
            compiled.(i) <-
              Carried { ops; u; starts; durations; currents; clock = 0.0 };
            alive.(!nalive) <- i;
            incr nalive;
            Probe.bump_named probe "periodic/carried_devices" 1
        | None, None ->
            let outcome, fatal_sigma =
              reference_run ~max_cycles ~model:dv.model ~alpha:dv.alpha
                ~period:dv.period dv.cycle
            in
            results.(i) <- { outcome; fatal_sigma };
            Probe.bump_named probe "periodic/reference_devices" 1
      done;
      (* One sweep per cycle over the still-alive devices, compacting
         the index array in place as devices die, so total work is
         sum over devices of (cycles lived), not n * max_cycles. *)
      let k = ref 0 in
      while !nalive > 0 && !k < max_cycles do
        let kept = ref 0 in
        for a = 0 to !nalive - 1 do
          let i = alive.(a) in
          let fatal =
            match compiled.(i) with
            | Channels d -> step_channels d ~alpha:alphas.(i) ~k:!k
            | Carried c ->
                step_carried c ~alpha:alphas.(i) ~k:!k ~period:periods.(i)
            | Resolved -> None (* never enters the alive set *)
          in
          match fatal with
          | Some sg -> results.(i) <- { outcome = Dies !k; fatal_sigma = sg }
          | None ->
              alive.(!kept) <- i;
              incr kept
        done;
        nalive := !kept;
        incr k
      done;
      (* survivors keep their Censored initialization *)
      results
    end
end

let cycles_to_death ?max_cycles ~model ~alpha ~period cycle =
  let r =
    (Batch.run ?max_cycles ~n:1
       ~device:(fun _ -> { model; alpha; period; cycle })
       ()).(0)
  in
  match r.Batch.outcome with
  | Dies 0 -> raise (Unsustainable r.Batch.fatal_sigma)
  | outcome -> outcome

let max_sustainable_cycles ?max_cycles ~model ~alpha cycle ~period ~target =
  match cycles_to_death ?max_cycles ~model ~alpha ~period cycle with
  | outcome -> cycles outcome >= target
  | exception Unsustainable _ -> false

let min_period_for_cycles ?max_cycles ?(tolerance = 0.01) ~model ~alpha cycle
    ~target =
  if target < 1 then invalid_arg "Periodic.min_period_for_cycles: target < 1";
  let len = Float.max 1e-6 (Profile.length cycle) in
  let sustains period =
    max_sustainable_cycles ?max_cycles ~model ~alpha cycle ~period ~target
  in
  (* generous recovery horizon: beyond this, more rest changes nothing
     material for the shipped models *)
  let hi = len +. 2000.0 in
  if not (sustains hi) then None
  else if sustains len then Some len
  else begin
    let rec bisect lo hi =
      (* invariant: not (sustains lo) && sustains hi *)
      if hi -. lo <= tolerance then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if sustains mid then bisect lo mid else bisect mid hi
      end
    in
    Some (bisect len hi)
  end

let interp_cycles ~model ~alpha cycle ~periods =
  if List.length periods < 2 then
    invalid_arg "Periodic.interp_cycles: need at least two periods";
  Interp.of_points
    (List.map
       (fun period ->
         let n =
           match cycles_to_death ~model ~alpha ~period cycle with
           | outcome -> cycles outcome
           | exception Unsustainable _ -> 0
         in
         (period, float_of_int n))
       periods)
