(** Incremental (delta) sigma evaluation for one sequential schedule.

    A [Delta.t] holds the mutable evaluation state of a single
    back-to-back discharge profile observed at its makespan: the
    per-position intervals [(I_k, D_k)], their compensated
    suffix-duration sums [tail_k = sum_{j>k} D_j], the per-position
    contribution terms of the model's {!Model.incremental}
    decomposition, and compensated running totals for sigma and the
    finish time.

    Moves follow a try / commit-or-discard protocol: [try_swap] and
    [try_set] cost a candidate without changing the committed state and
    return the candidate [(sigma, finish)]; exactly one of {!commit} or
    {!discard} must follow before the next [try_*] (a second [try_*]
    with a move pending raises [Invalid_argument] — the strictness
    catches protocol bugs in search loops).

    Costs per candidate, for a model with an incremental decomposition:
    [try_swap] is O(1) — at most 2 term evaluations; [try_set] at
    position [i] is O(i) tail updates and, for a tail-sensitive model,
    at most [i + 1] term evaluations (with an automatic switch to a
    fresh full sum when that is cheaper).

    Models without a decomposition but with a {!Model.stepper} (the
    diffusion PDE) go through checkpointed partial solutions: the
    integration state is snapshotted every [~sqrt n] positions, a
    candidate at position [i] restores the preceding snapshot and
    re-integrates only the suffix (bit-identical to a from-scratch
    integration), and a commit lazily invalidates the snapshots after
    the move's position.  Counted in [Probe.delta_ck_restores] /
    [delta_ck_advances].

    Models with neither fall back to a full profile evaluation per
    candidate, counted in [Probe.delta_full_evals] (and per model name
    under the ["delta_full_evals/<name>"] named counter).

    Numerics: results agree with the model's full [sigma] path within
    1e-9 {e relative}, not bit-for-bit — the full path derives each
    recovery time in forward coordinates ([at - start - duration]),
    the delta path as a suffix sum, and the two differ by ulps.  The
    running sigma total is re-summed from the stored terms every
    [max 32 n] commits so drift never accumulates across a long
    search. *)

type t

val create : Model.t -> t
(** An empty evaluator (zero positions) for the given model.  Its
    arrays grow geometrically on {!load}, so one evaluator can be
    reused across instances without reallocation churn. *)

val init : Model.t -> n:int -> point:(int -> float * float) -> t
(** [create] + {!load}. *)

val load : t -> n:int -> point:(int -> float * float) -> unit
(** [load t ~n ~point] resets [t] to the [n]-interval schedule whose
    position [i] draws [point i = (current_i, duration_i)], dropping
    any pending move.  O(n) model-term evaluations.  Zero-duration
    positions are kept (their term is exactly [0.], so sigma matches
    the profile path, which drops them).
    @raise Invalid_argument on negative [n], negative or non-finite
    current or duration. *)

val of_profile : Model.t -> Profile.t -> t
(** Build from an existing profile.
    @raise Invalid_argument if the profile has idle gaps (e.g. from
    [Profile.with_idle]): a gapped load has no suffix-time
    decomposition at the makespan — use the model's full path
    instead. *)

val length : t -> int
(** Number of positions. *)

val current : t -> int -> float

val duration : t -> int -> float
(** Committed interval fields at a position.
    @raise Invalid_argument out of range. *)

val sigma : t -> float
(** Committed sigma at the makespan.  Pending candidates do not
    affect it. *)

val finish : t -> float
(** Committed makespan (sum of all durations). *)

val try_swap : t -> int -> float * float
(** [try_swap t k] costs exchanging positions [k] and [k+1] and
    returns the candidate [(sigma, finish)].  The finish never changes
    under a swap; for a tail-insensitive model sigma is unchanged too
    and no terms are evaluated.  A candidate value-identical to the
    committed state (both intervals equal; likewise for {!try_set}
    onto the current values) returns the committed pair bit-for-bit —
    the full evaluator yields an exact tie there too, and search
    loops compare energies exactly.
    @raise Invalid_argument if [k+1] is out of range or a move is
    already pending. *)

val try_set : t -> int -> current:float -> duration:float -> float * float
(** [try_set t i ~current ~duration] costs replacing position [i]'s
    interval and returns the candidate [(sigma, finish)].  O(i).
    @raise Invalid_argument on range, sign or finiteness violations,
    or if a move is already pending. *)

val commit : t -> unit
(** Make the pending candidate the committed state.  O(1) for swaps,
    O(i) blits for sets.
    @raise Invalid_argument if no move is pending. *)

val discard : t -> unit
(** Drop the pending candidate.  O(1).
    @raise Invalid_argument if no move is pending. *)

val refresh : t -> unit
(** Force the periodic full re-sum of sigma from the stored terms now
    (normally automatic).  Exposed for drift tests. *)
