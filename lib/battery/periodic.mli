(** Periodic-mission lifetime analysis.

    A portable device rarely runs its task graph once: it repeats it
    every period (sense/compute/transmit loops, control cycles).  Given
    one cycle's discharge profile and the period, this module answers
    the operational questions: how many cycles does a full battery
    sustain, and what is the slowest period that still reaches a target
    cycle count?  Inter-cycle idle time lets the battery recover, so
    the answers depend on the model's nonlinearity, not just on
    charge-per-cycle.

    Lifetime estimation is O(cycles): models exposing a {!Model.decay}
    channel decomposition (ideal, Peukert, KiBaM, Rakhmatov–Vrudhula)
    telescope the repeated cycles into per-channel geometric series
    advanced in O(1) per cycle with no [exp] on the per-cycle path;
    stepper-only models (the diffusion PDE) carry one integration state
    across the whole mission instead of re-integrating the history per
    probe.  The original quadratic full-history path is retained as
    {!cycles_to_death_reference} — the oracle the property tests check
    the fast kernels against.  See DESIGN.md §15 for the derivations. *)

open Batsched_numeric

exception Unsustainable of float
(** The battery dies within the very first cycle.  Carries sigma at the
    first fatal probe — how far past alpha the cycle lands, which is
    what a caller needs to report {e how} unsustainable the workload
    is. *)

type outcome =
  | Dies of int
      (** [Dies n]: the battery completes exactly [n] cycles and dies
          during cycle [n] (0-based).  [n >= 1] from the scalar
          functions, which raise {!Unsustainable} instead of returning
          [Dies 0]; {!Batch.run} reports first-cycle deaths as
          [Dies 0] (a batch cannot raise per device). *)
  | Censored of int
      (** [Censored h]: still alive after the [h]-cycle horizon.  The
          true lifetime is [>= h] but unknown — survival analytics must
          treat it as censored, not as a death at [h]. *)

val cycles : outcome -> int
(** Complete cycles observed: [n] for [Dies n], the horizon for
    [Censored].  The lower bound on lifetime in both cases. *)

val default_max_cycles : int
(** Horizon used when [?max_cycles] is omitted (500). *)

type device = {
  model : Model.t;
  alpha : float;    (** battery capacity parameter, mA*min *)
  period : float;   (** cycle repetition period, minutes *)
  cycle : Profile.t;  (** one cycle's discharge profile; must fit in
                          the period *)
}
(** One battery-powered device: everything {!Batch.run} needs to
    estimate its endurance. *)

val cycles_to_death :
  ?max_cycles:int -> model:Model.t -> alpha:float -> period:float ->
  Profile.t -> outcome
(** [cycles_to_death ~model ~alpha ~period cycle] repeats [cycle] every
    [period] minutes (the cycle must fit: [length cycle <= period]) and
    returns the number of {e complete} cycles before sigma first
    reaches [alpha], probing sigma at every active-interval end (the
    intra-cycle maxima — sigma relaxes during idle).  Cost is
    O(cycles) after an O(intervals^2 * channels) setup.
    @raise Unsustainable if the first cycle already kills the battery.
    @raise Invalid_argument on a non-positive period, a cycle longer
    than the period, or non-positive [alpha]. *)

val cycles_to_death_reference :
  ?max_cycles:int -> model:Model.t -> alpha:float -> period:float ->
  Profile.t -> outcome
(** The original quadratic-cost estimator: materializes the growing
    full history and probes it with the model's own [sigma].  Same
    contract as {!cycles_to_death}; for decay-channel models the two
    agree up to float accumulation noise, for stepper-only models they
    are bit-identical (the carried state replays exactly the reference
    integration's arithmetic).  Kept as the property-test oracle and
    for models exposing neither [decay] nor [stepper]. *)

(** Population endurance: many devices advanced one cycle per sweep. *)
module Batch : sig
  type result = {
    outcome : outcome;
    fatal_sigma : float;
        (** sigma at the first fatal probe for [Dies _]; [nan] for
            [Censored]. *)
  }

  val run :
    ?max_cycles:int -> n:int -> device:(int -> device) -> unit ->
    result array
  (** [run ~n ~device] estimates the lifetime of devices
      [device 0 .. device (n-1)] — each with its own model, capacity,
      period and cycle — and returns one {!result} per device, in
      device order.  Devices are compiled once (channel tables or a
      carried stepper state), then the whole population advances one
      cycle per sweep with dead devices compacted out, so total work is
      the sum of lifetimes, not [n * max_cycles], and peak memory is
      the compiled states — independent of the horizon.  [device] is
      called exactly once per index, in order.  Scalar
      {!cycles_to_death} is [run ~n:1], so batch and scalar results
      agree bit-for-bit by construction.  Models with neither [decay]
      nor [stepper] fall back to the reference path at setup.
      @raise Invalid_argument as {!cycles_to_death}, or on negative
      [n]. *)
end

val max_sustainable_cycles :
  ?max_cycles:int -> model:Model.t -> alpha:float -> Profile.t ->
  period:float -> target:int -> bool
(** [max_sustainable_cycles ~model ~alpha cycle ~period ~target] is true
    iff the battery completes at least [target] cycles (false instead of
    raising when the first cycle is fatal). *)

val min_period_for_cycles :
  ?max_cycles:int -> ?tolerance:float -> model:Model.t -> alpha:float ->
  Profile.t -> target:int -> float option
(** [min_period_for_cycles ~model ~alpha cycle ~target] finds (by
    bisection, [tolerance] minutes, default 0.01) the smallest period
    that still sustains [target] complete cycles, or [None] if even
    arbitrarily long rest cannot (the asymptotic budget
    [target * charge-per-cycle] exceeds alpha).  Longer periods mean
    more recovery, so sustainability is monotone in the period. *)

val interp_cycles :
  model:Model.t -> alpha:float -> Profile.t -> periods:float list ->
  Interp.t
(** Tabulate cycles-to-death against the period — the data behind a
    period/endurance trade-off curve.  Censored points enter the table
    at the horizon value.
    @raise Invalid_argument on fewer than two periods. *)
