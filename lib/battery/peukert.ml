open Batsched_numeric

let check_params exponent reference_current =
  if exponent < 1.0 then invalid_arg "Peukert.sigma: exponent must be >= 1";
  if reference_current <= 0.0 then
    invalid_arg "Peukert.sigma: reference current must be positive"

let sigma ?(exponent = 1.2) ?(reference_current = 100.0) p ~at =
  check_params exponent reference_current;
  if at < 0.0 then invalid_arg "Peukert.sigma: negative time";
  let k = reference_current ** (1.0 -. exponent) in
  let clipped = Profile.truncate p ~at in
  let contribution (iv : Profile.interval) =
    if iv.current = 0.0 then 0.0
    else k *. (iv.current ** exponent) *. iv.duration
  in
  Kahan.sum_list (List.map contribution (Profile.intervals clipped))

(* Same per-interval formula as [sigma]'s contribution: rate-dependence
   only, no memory of the rest of the schedule, so tail is ignored. *)
let incremental ~exponent ~reference_current =
  let k = reference_current ** (1.0 -. exponent) in
  { Model.term =
      (fun ~current ~duration ~tail:_ ->
        if current = 0.0 then 0.0
        else k *. (current ** exponent) *. duration);
    tail_sensitive = false }

let batch ~exponent ~reference_current =
  let k = reference_current ** (1.0 -. exponent) in
  { Model.batch_run =
      (fun ~n ~currents ~durations ~tails:_ ~sigmas ~lo ~hi ->
        let acc = Kahan.Acc.create () in
        for p = lo to hi - 1 do
          Kahan.Acc.reset acc;
          let base = p * n in
          for j = 0 to n - 1 do
            let i = currents.(base + j) in
            if i <> 0.0 then
              Kahan.Acc.add acc (k *. (i ** exponent) *. durations.(base + j))
          done;
          sigmas.(p) <- Kahan.Acc.sum acc
        done) }

(* rate-dependence only, no memory: channel-free like the ideal model *)
let decay ~exponent ~reference_current =
  let k = reference_current ** (1.0 -. exponent) in
  { Model.rates = [||];
    weights = (fun ~current:_ ~duration:_ _ -> ());
    charge =
      (fun ~current ~duration ->
        if current = 0.0 then 0.0
        else k *. (current ** exponent) *. duration) }

let model ?(exponent = 1.2) ?(reference_current = 100.0) () =
  check_params exponent reference_current;
  { Model.name = "peukert";
    sigma = (fun p ~at -> sigma ~exponent ~reference_current p ~at);
    incremental = Some (incremental ~exponent ~reference_current);
    stepper = None;
    batch = Some (batch ~exponent ~reference_current);
    decay = Some (decay ~exponent ~reference_current) }
