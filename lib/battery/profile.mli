(** Current discharge profiles.

    A profile is a finite sequence of non-overlapping intervals, each
    drawing a constant current from the battery.  Gaps between intervals
    are idle periods (zero current) during which the battery recovers.
    Times are in minutes, currents in mA, charges in mA*min throughout
    the repository. *)

type interval = private {
  start : float;     (** interval start time, minutes from 0 *)
  duration : float;  (** interval length, minutes, > 0 *)
  current : float;   (** constant platform current, mA, >= 0 *)
}

type t
(** A validated profile: intervals sorted by start time, pairwise
    non-overlapping, all within [[0, infinity)].  Stored as three
    unboxed float arrays (start/duration/current per interval), so the
    hot sigma evaluators can walk it without per-call allocation — use
    {!fold} / {!fold_until} rather than {!intervals} on hot paths. *)

val empty : t
(** The profile that draws nothing. *)

val of_intervals : (float * float * float) list -> t
(** [of_intervals [(start, duration, current); ...]] validates and sorts.
    Zero-duration intervals are dropped.
    @raise Invalid_argument on negative fields or overlapping
    intervals. *)

val sequential : (float * float) list -> t
(** [sequential [(current, duration); ...]] lays intervals back to back
    from time 0 — the shape produced by a sequential task schedule.
    Zero-duration entries are dropped.
    @raise Invalid_argument on negative currents or durations. *)

val sequential_fn : n:int -> (int -> float * float) -> t
(** [sequential_fn ~n f] is [sequential [f 0; f 1; ...; f (n-1)]]
    without building the intermediate list: [f i] returns the
    [(current, duration)] of the [i]-th back-to-back interval and the
    arrays are filled directly.  The schedule-to-profile conversion on
    the search hot path uses this.
    @raise Invalid_argument as {!sequential}, or on negative [n]. *)

val constant : current:float -> duration:float -> t
(** A single-interval profile starting at 0. *)

val with_idle : t -> after:float -> idle:float -> t
(** [with_idle p ~after ~idle] shifts every interval starting at or
    after time [after] right by [idle] minutes, opening a recovery gap.
    @raise Invalid_argument on negative [idle]. *)

val intervals : t -> interval list
(** Intervals in increasing start-time order.  Materializes a fresh
    list; prefer {!fold} / {!fold_until} where allocation matters. *)

val num_intervals : t -> int
(** Number of (positive-duration) intervals. *)

val fold :
  t ->
  init:'a ->
  f:('a -> start:float -> duration:float -> current:float -> 'a) ->
  'a
(** Allocation-free left fold over the intervals in start order. *)

val fold_until :
  t ->
  at:float ->
  init:'a ->
  f:('a -> start:float -> duration:float -> current:float -> 'a) ->
  'a
(** [fold_until t ~at ~init ~f] folds over the load up to time [at]
    exactly as {!truncate} would expose it — intervals starting at or
    after [at] are skipped, a straddling interval is clipped to
    [at - start] — but lazily, with no profile copy. *)

val length : t -> float
(** End time of the last interval (0 for {!empty}). *)

val total_charge : t -> float
(** Plain coulomb count [sum I_k * Delta_k] (mA*min), i.e. the charge an
    ideal battery would lose. *)

val truncate : t -> at:float -> t
(** [truncate p ~at] keeps only load up to time [at], clipping a
    straddling interval. *)

val superpose : t list -> t
(** [superpose ps] sums the profiles: concurrent currents add, as when
    several processing elements draw from one battery.  The result is
    the step function of the total current, with zero-current stretches
    left as gaps. *)

val peak_current : t -> float
(** Largest interval current (0 for {!empty}). *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, one interval per line. *)
