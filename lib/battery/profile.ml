type interval = { start : float; duration : float; current : float }

(* Struct-of-arrays representation: three unboxed float arrays indexed
   by interval, sorted by start, non-overlapping.  Hot consumers
   (sigma evaluators) walk the arrays directly via [fold_until] /
   [fold]; [intervals] materializes the record list for cold callers. *)
type t = {
  starts : float array;
  durations : float array;
  currents : float array;
}

let empty = { starts = [||]; durations = [||]; currents = [||] }

let num_intervals t = Array.length t.starts

let check_interval (start, duration, current) =
  if not (Float.is_finite start && Float.is_finite duration && Float.is_finite current)
  then invalid_arg "Profile: non-finite interval field";
  if start < 0.0 then invalid_arg "Profile: negative start time";
  if duration < 0.0 then invalid_arg "Profile: negative duration";
  if current < 0.0 then invalid_arg "Profile: negative current"

(* [triples] must already be sorted by start and free of zero-duration
   entries; packs without further checks. *)
let pack_sorted triples =
  let n = List.length triples in
  let starts = Array.make n 0.0 in
  let durations = Array.make n 0.0 in
  let currents = Array.make n 0.0 in
  List.iteri
    (fun i (s, d, c) ->
      starts.(i) <- s;
      durations.(i) <- d;
      currents.(i) <- c)
    triples;
  { starts; durations; currents }

let of_intervals triples =
  List.iter check_interval triples;
  let kept = List.filter (fun (_, d, _) -> d > 0.0) triples in
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) kept in
  let rec check_overlap = function
    | (s1, d1, _) :: ((s2, _, _) :: _ as rest) ->
        (* allow touching intervals; tiny tolerance for float noise *)
        if s1 +. d1 > s2 +. 1e-9 then invalid_arg "Profile: overlapping intervals"
        else check_overlap rest
    | [ _ ] | [] -> ()
  in
  check_overlap sorted;
  pack_sorted sorted

let sequential_fn ~n f =
  if n < 0 then invalid_arg "Profile.sequential_fn: negative count";
  let starts = Array.make (Stdlib.max n 1) 0.0 in
  let durations = Array.make (Stdlib.max n 1) 0.0 in
  let currents = Array.make (Stdlib.max n 1) 0.0 in
  let kept = ref 0 in
  let clock = ref 0.0 in
  for i = 0 to n - 1 do
    let current, duration = f i in
    if duration < 0.0 then invalid_arg "Profile.sequential: negative duration";
    if current < 0.0 then invalid_arg "Profile.sequential: negative current";
    check_interval (!clock, duration, current);
    if duration > 0.0 then begin
      starts.(!kept) <- !clock;
      durations.(!kept) <- duration;
      currents.(!kept) <- current;
      incr kept
    end;
    clock := !clock +. duration
  done;
  { starts = Array.sub starts 0 !kept;
    durations = Array.sub durations 0 !kept;
    currents = Array.sub currents 0 !kept }

let sequential pairs =
  let arr = Array.of_list pairs in
  sequential_fn ~n:(Array.length arr) (fun i -> arr.(i))

let constant ~current ~duration = of_intervals [ (0.0, duration, current) ]

let with_idle t ~after ~idle =
  if idle < 0.0 then invalid_arg "Profile.with_idle: negative idle";
  { t with
    starts =
      Array.map (fun s -> if s >= after then s +. idle else s) t.starts }

let interval t i =
  { start = t.starts.(i); duration = t.durations.(i); current = t.currents.(i) }

let intervals t = List.init (num_intervals t) (interval t)

let fold t ~init ~f =
  let n = num_intervals t in
  let acc = ref init in
  for i = 0 to n - 1 do
    acc :=
      f !acc ~start:t.starts.(i) ~duration:t.durations.(i)
        ~current:t.currents.(i)
  done;
  !acc

let fold_until t ~at ~init ~f =
  let n = num_intervals t in
  let rec go i acc =
    if i >= n then acc
    else
      let s = t.starts.(i) in
      if s >= at then acc (* sorted by start: nothing later overlaps *)
      else
        let d = t.durations.(i) in
        let d = if s +. d <= at then d else at -. s in
        go (i + 1) (f acc ~start:s ~duration:d ~current:t.currents.(i))
  in
  go 0 init

let length t =
  fold t ~init:0.0 ~f:(fun acc ~start ~duration ~current:_ ->
      Float.max acc (start +. duration))

let total_charge t =
  Batsched_numeric.Kahan.sum_fn (num_intervals t) (fun i ->
      t.currents.(i) *. t.durations.(i))

let truncate t ~at =
  of_intervals
    (List.rev
       (fold_until t ~at ~init:[] ~f:(fun acc ~start ~duration ~current ->
            (start, duration, current) :: acc)))

let superpose ps =
  let all = List.concat_map intervals ps in
  if all = [] then empty
  else begin
    (* breakpoints = every interval edge; between consecutive
       breakpoints the total current is constant *)
    let edges =
      List.concat_map (fun iv -> [ iv.start; iv.start +. iv.duration ]) all
      |> List.sort_uniq compare
    in
    let total_at t =
      List.fold_left
        (fun acc iv ->
          if t >= iv.start -. 1e-12 && t < iv.start +. iv.duration -. 1e-12
          then acc +. iv.current
          else acc)
        0.0 all
    in
    let rec segments = function
      | a :: (b :: _ as rest) ->
          let mid = 0.5 *. (a +. b) in
          let current = total_at mid in
          if current > 0.0 then (a, b -. a, current) :: segments rest
          else segments rest
      | [ _ ] | [] -> []
    in
    of_intervals (segments edges)
  end

let peak_current t = Array.fold_left Float.max 0.0 t.currents

let pp fmt t =
  if num_intervals t = 0 then Format.fprintf fmt "(empty profile)"
  else
    for i = 0 to num_intervals t - 1 do
      Format.fprintf fmt "[%8.2f .. %8.2f] %8.1f mA@."
        t.starts.(i)
        (t.starts.(i) +. t.durations.(i))
        t.currents.(i)
    done
