let sigma p ~at =
  if at < 0.0 then invalid_arg "Ideal.sigma: negative time";
  Batsched_numeric.Kahan.sum
    (Profile.fold_until p ~at ~init:Batsched_numeric.Kahan.zero
       ~f:(fun acc ~start:_ ~duration ~current ->
         Batsched_numeric.Kahan.add acc (current *. duration)))

let model = { Model.name = "ideal"; sigma }
