let sigma p ~at =
  if at < 0.0 then invalid_arg "Ideal.sigma: negative time";
  Batsched_numeric.Kahan.sum
    (Profile.fold_until p ~at ~init:Batsched_numeric.Kahan.zero
       ~f:(fun acc ~start:_ ~duration ~current ->
         Batsched_numeric.Kahan.add acc (current *. duration)))

(* sigma is the plain charge integral: the per-interval term ignores how
   much load follows, so every local-search move is O(1) to re-cost. *)
let incremental =
  { Model.term = (fun ~current ~duration ~tail:_ -> current *. duration);
    tail_sensitive = false }

let batch =
  { Model.batch_run =
      (fun ~n ~currents ~durations ~tails:_ ~sigmas ~lo ~hi ->
        let acc = Batsched_numeric.Kahan.Acc.create () in
        for p = lo to hi - 1 do
          Batsched_numeric.Kahan.Acc.reset acc;
          let base = p * n in
          for k = 0 to n - 1 do
            Batsched_numeric.Kahan.Acc.add acc
              (currents.(base + k) *. durations.(base + k))
          done;
          sigmas.(p) <- Batsched_numeric.Kahan.Acc.sum acc
        done) }

(* no memory at all: the decay decomposition is the bare charge term *)
let decay =
  { Model.rates = [||];
    weights = (fun ~current:_ ~duration:_ _ -> ());
    charge = (fun ~current ~duration -> current *. duration) }

let model =
  { Model.name = "ideal"; sigma; incremental = Some incremental;
    stepper = None; batch = Some batch; decay = Some decay }
