(** The Kinetic Battery Model (KiBaM) of Manwell & McGowan.

    Charge lives in two wells: an {e available} well [y1] that feeds the
    load directly and a {e bound} well [y2] that replenishes it at a
    finite rate.  With [c] the available-well capacity fraction and
    [k'] the effective rate constant, a constant-current interval has a
    closed-form solution, so arbitrary piecewise-constant profiles are
    evaluated exactly (no ODE integration error).  The battery is
    exhausted when the available well empties, even while bound charge
    remains — KiBaM's rendition of the rate-capacity effect; at rest the
    wells re-equilibrate — its recovery effect.

    KiBaM is the standard alternative to the Rakhmatov–Vrudhula
    diffusion model in the battery-aware scheduling literature
    (cf. Jongerden & Haverkort's model comparison); it is included to
    test the scheduler's robustness to the choice of battery model. *)

type params = {
  capacity : float;  (** total charge [y1 + y2] when full, mA*min; > 0 *)
  c : float;         (** available-well fraction, in (0, 1) *)
  k_prime : float;   (** effective rate constant, 1/min; > 0 *)
}

val default_params : params
(** Capacity matched to the Itsy cell's alpha (40375 mA*min),
    [c = 0.5], [k_prime = 0.05] — mid-range literature values. *)

val make_params : capacity:float -> c:float -> k_prime:float -> params
(** @raise Invalid_argument outside the ranges above. *)

type state = { available : float; bound : float }
(** Well contents (mA*min). *)

val full : params -> state
(** The fully charged equilibrium: [available = c * capacity]. *)

val step : params -> state -> current:float -> duration:float -> state
(** Closed-form evolution over one constant-current interval.  Both
    wells may legitimately go negative once the battery is past
    exhaustion; callers detect death via [available <= 0].  A
    zero-length interval is the exact identity (the input state is
    returned unchanged), so degenerate intervals from same-column
    repoints introduce no drift.
    @raise Invalid_argument on negative current or duration. *)

val state_at : params -> Profile.t -> at:float -> state
(** Evolve {!full} through the profile (idle gaps included) up to time
    [at]. *)

val sigma : ?params:params -> Profile.t -> at:float -> float
(** Apparent charge lost, mapped onto the sigma/alpha convention used
    across this library: [sigma = capacity - available/c].  At rest
    equilibrium this equals the charge actually drawn (full recovery);
    under load it exceeds it (rate capacity); the battery dies when
    [sigma >= capacity]. *)

val incremental : params -> Model.incremental
(** The exact suffix-time decomposition of [sigma] at the makespan of a
    gapless profile: the per-interval affine maps diagonalize (total
    charge is conserved; the disequilibrium [y1 - c*y0] contracts by
    [e^{-k' D}] per interval), giving

    {[ sigma = sum_k ( I_k D_k
                       + ((1-c)/(c k')) I_k (1 - e^{-k' D_k}) e^{-k' tail_k} ) ]}

    Tail-sensitive; a [duration = 0] term is exactly [0.].  See
    DESIGN.md §11 for the derivation. *)

val batch : params -> Model.batch
(** Structure-of-arrays population kernel: one backward sweep per
    candidate with a running [e^{-k' tail}] product — one [exp] per
    non-empty interval. *)

val model : ?params:params -> unit -> Model.t
(** Packaged as a {!Model.t} named ["kibam"] with the incremental and
    batched paths above.  Use [params.capacity] as the matching [alpha]
    for lifetime queries. *)
