open Batsched_numeric

type t = {
  model : Model.t;
  pool : Pool.t;
  mutable pop : int;
  mutable n : int;
  mutable currents : float array;   (* pop rows of n, row-major *)
  mutable durations : float array;
  mutable tails : float array;
  mutable sigmas : float array;     (* one per candidate *)
  mutable finishes : float array;
}

let create ?(pool = Pool.sequential) model =
  { model;
    pool;
    pop = 0;
    n = 0;
    currents = [||];
    durations = [||];
    tails = [||];
    sigmas = [||];
    finishes = [||] }

let model t = t.model

let pop t = t.pop

let width t = t.n

let ensure_capacity t ~pop ~n =
  let cells = pop * n in
  if Array.length t.currents < cells then begin
    let cap = ref (Stdlib.max 16 (Array.length t.currents)) in
    while !cap < cells do
      cap := !cap * 2
    done;
    t.currents <- Array.make !cap 0.0;
    t.durations <- Array.make !cap 0.0;
    t.tails <- Array.make !cap 0.0
  end;
  if Array.length t.sigmas < pop then begin
    let cap = ref (Stdlib.max 8 (Array.length t.sigmas)) in
    while !cap < pop do
      cap := !cap * 2
    done;
    t.sigmas <- Array.make !cap 0.0;
    t.finishes <- Array.make !cap 0.0
  end

let check_point current duration =
  if not (Float.is_finite current && Float.is_finite duration) then
    invalid_arg "Sigma_batch.eval: non-finite interval field";
  if current < 0.0 then invalid_arg "Sigma_batch.eval: negative current";
  if duration < 0.0 then invalid_arg "Sigma_batch.eval: negative duration"

(* Sequential-sigma fallback for one candidate row: build the row's
   profile and go through the model's full path.  O(n) plus a profile
   allocation per candidate — the price of a model without a kernel. *)
let fallback_row t p =
  let base = p * t.n in
  let profile =
    Profile.sequential_fn ~n:t.n (fun k ->
        (t.currents.(base + k), t.durations.(base + k)))
  in
  t.sigmas.(p) <- Model.sigma_end t.model profile

let run_range t lo hi =
  match t.model.Model.batch with
  | Some b ->
      b.Model.batch_run ~n:t.n ~currents:t.currents ~durations:t.durations
        ~tails:t.tails ~sigmas:t.sigmas ~lo ~hi
  | None ->
      for p = lo to hi - 1 do
        fallback_row t p
      done

let eval t ~pop ~n ~current ~duration =
  if pop < 0 then invalid_arg "Sigma_batch.eval: negative population";
  if n < 0 then invalid_arg "Sigma_batch.eval: negative width";
  ensure_capacity t ~pop ~n;
  t.pop <- pop;
  t.n <- n;
  for p = 0 to pop - 1 do
    let base = p * n in
    for k = 0 to n - 1 do
      let c = current p k and d = duration p k in
      check_point c d;
      t.currents.(base + k) <- c;
      t.durations.(base + k) <- d
    done;
    (* plain backward adds: [tail_k +. D_k] is bit-equal to
       [tail_{k-1}], the telescoping the kernels rely on *)
    if n > 0 then begin
      t.tails.(base + n - 1) <- 0.0;
      for k = n - 2 downto 0 do
        t.tails.(base + k) <- t.durations.(base + k + 1) +. t.tails.(base + k + 1)
      done;
      t.finishes.(p) <- t.durations.(base) +. t.tails.(base)
    end
    else t.finishes.(p) <- 0.0;
    t.sigmas.(p) <- 0.0
  done;
  let probe = Probe.local () in
  probe.Probe.batch_evals <- probe.Probe.batch_evals + 1;
  (match t.model.Model.batch with
  | Some _ -> probe.Probe.batch_candidates <- probe.Probe.batch_candidates + pop
  | None -> probe.Probe.batch_fallbacks <- probe.Probe.batch_fallbacks + pop);
  let workers = Stdlib.min (Pool.size t.pool) pop in
  if workers <= 1 then run_range t 0 pop
  else
    (* adaptive candidate spans; disjoint [sigmas] indices make the
       cross-domain writes race-free.  [for_range] lets the pool split
       and steal spans instead of committing to pre-strided shards, so
       skewed per-candidate costs rebalance. *)
    Pool.for_range t.pool ~n:pop (fun lo hi -> run_range t lo hi)

let sigma t p =
  if p < 0 || p >= t.pop then invalid_arg "Sigma_batch.sigma: out of range";
  t.sigmas.(p)

let finish t p =
  if p < 0 || p >= t.pop then invalid_arg "Sigma_batch.finish: out of range";
  t.finishes.(p)
