type incremental = {
  term : current:float -> duration:float -> tail:float -> float;
  tail_sensitive : bool;
}

type t = {
  name : string;
  sigma : Profile.t -> at:float -> float;
  incremental : incremental option;
}

let sigma_end m p = m.sigma p ~at:(Profile.length p)
