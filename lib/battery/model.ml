type incremental = {
  term : current:float -> duration:float -> tail:float -> float;
  tail_sensitive : bool;
}

type decay = {
  rates : float array;
  weights : current:float -> duration:float -> float array -> unit;
  charge : current:float -> duration:float -> float;
}

type stepper_ops = {
  start : float array -> unit;
  advance : float array -> current:float -> duration:float -> unit;
  observe : float array -> float;
}

type stepper = {
  state_dim : int;
  fresh : unit -> stepper_ops;
}

type batch = {
  batch_run :
    n:int ->
    currents:float array ->
    durations:float array ->
    tails:float array ->
    sigmas:float array ->
    lo:int ->
    hi:int ->
    unit;
}

type t = {
  name : string;
  sigma : Profile.t -> at:float -> float;
  incremental : incremental option;
  stepper : stepper option;
  batch : batch option;
  decay : decay option;
}

let sigma_end m p = m.sigma p ~at:(Profile.length p)
