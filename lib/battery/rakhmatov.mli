(** The Rakhmatov–Vrudhula analytical battery model (ICCAD 2001), the
    paper's Eq. 1.

    For a profile with intervals [(t_k, Delta_k, I_k)] and an
    observation instant [T] at or after the end of the load,

    {[ sigma(T) = sum_k I_k * ( Delta_k
                  + 2 * sum_{m=1..10} ( exp(-beta^2 m^2 (T - t_k - Delta_k))
                                      - exp(-beta^2 m^2 (T - t_k)) )
                                      / (beta^2 m^2) ) ]}

    The first addend is the actual charge drawn; the series term is the
    charge made temporarily *unavailable* by the diffusion gradient,
    which relaxes (recovers) as [T] moves away from the interval.  Large
    [beta] means fast diffusion (an ideal battery as
    [beta -> infinity]); small [beta] exaggerates rate-capacity and
    recovery effects. *)

val default_beta : float
(** The paper's value, 0.273 (minutes^(-1/2)). *)

val sigma :
  ?terms:int -> ?beta:float -> Profile.t -> at:float -> float
(** [sigma p ~at] evaluates Eq. 1 at time [at].  Load after [at] is
    truncated away (an interval straddling [at] is clipped, so [at]
    always coincides with the end of the last counted interval or
    falls in idle time).  [terms] defaults to the paper's 10.

    This is the fast evaluator: truncation happens lazily during the
    interval fold (no profile copy), the kernel is served from the
    memoized [Series] tails, and whole per-interval contributions are
    memoized in suffix-time coordinates on
    [(beta, terms, current, duration, tail)] — where
    [tail = at - start - duration] is the time the interval has to
    recover before the observation instant — in a domain-local table.
    Because the key carries no absolute time, candidate schedules of
    different total length share entries for every suffix-aligned
    interval; re-costing a candidate only pays for intervals whose
    distance from the end moved.  Agrees with {!sigma_reference} to
    well under 1e-9 (relative).
    @raise Invalid_argument on negative [at]. *)

val contribution :
  terms:int -> beta:float -> current:float -> duration:float ->
  tail:float -> float
(** One interval's contribution to sigma in suffix-time coordinates:
    [current * (duration + kernel tail (tail + duration))], memoized.
    [tail >= 0] is the load duration between the interval's end and the
    observation instant.  This is the term behind both {!sigma} and the
    model's {!Model.incremental} interface; exposed so the delta
    evaluator and the full path share one cache. *)

val sigma_reference :
  ?terms:int -> ?beta:float -> Profile.t -> at:float -> float
(** The seed implementation, kept as the property-test oracle:
    truncated profile copy, uncached term-by-term kernel.  Same
    contract as {!sigma}. *)

val batch : terms:int -> beta:float -> Model.batch
(** Structure-of-arrays population kernel.  The suffix points of a
    gapless profile telescope ([tail_k + D_k = tail_{k-1}] bit-exactly
    under backward-add tails), so one backward sweep per candidate pays
    a single fresh series evaluation per non-empty interval, and each
    evaluation costs one [exp] via the [x^{m^2}] power recurrence
    (against [terms] exps for the direct form).  Agrees with {!sigma}
    to float-accumulation noise. *)

val model : ?terms:int -> ?beta:float -> unit -> Model.t
(** Package {!sigma} as a {!Model.t} named ["rakhmatov"], with the
    incremental and batched paths. *)

val unavailable_charge :
  ?terms:int -> ?beta:float -> Profile.t -> at:float -> float
(** The series part alone: [sigma p ~at - total_charge (truncate p at)].
    Non-negative while the load is active; decays toward 0 during rest
    (full recovery in the limit). *)
