open Batsched_numeric

type params = {
  capacity : float;
  c : float;
  k_prime : float;
}

let make_params ~capacity ~c ~k_prime =
  if not (capacity > 0.0) then invalid_arg "Kibam.make_params: capacity <= 0";
  if not (c > 0.0 && c < 1.0) then invalid_arg "Kibam.make_params: c outside (0,1)";
  if not (k_prime > 0.0) then invalid_arg "Kibam.make_params: k_prime <= 0";
  { capacity; c; k_prime }

let default_params = make_params ~capacity:40375.0 ~c:0.5 ~k_prime:0.05

type state = { available : float; bound : float }

let full p = { available = p.c *. p.capacity; bound = (1.0 -. p.c) *. p.capacity }

(* Manwell–McGowan closed form for one constant-current interval.  With
   y0 the total charge at interval start and r = e^{-k' t}:
     y1(t) = y1 r + (y0 k' c - I)(1 - r)/k' - I c (k' t - 1 + r)/k'
     y2(t) = y0 - I t - y1(t)                (charge conservation)
   A zero-length interval is the identity: the input state is returned
   as-is (same record, bit-identical wells), so degenerate intervals
   from same-column repoints cannot introduce drift. *)
let step p ({ available = y1; bound = y2 } as st) ~current ~duration =
  if current < 0.0 then invalid_arg "Kibam.step: negative current";
  if duration < 0.0 then invalid_arg "Kibam.step: negative duration";
  if duration = 0.0 then st
  else begin
    let k' = p.k_prime in
    let y0 = y1 +. y2 in
    let r = exp (-.k' *. duration) in
    let y1' =
      (y1 *. r)
      +. ((y0 *. k' *. p.c) -. current) *. (1.0 -. r) /. k'
      -. (current *. p.c *. ((k' *. duration) -. 1.0 +. r) /. k')
    in
    { available = y1'; bound = y0 -. (current *. duration) -. y1' }
  end

let state_at p profile ~at =
  if at < 0.0 then invalid_arg "Kibam.state_at: negative time";
  let clipped = Profile.truncate profile ~at in
  let advance (state, clock) (iv : Profile.interval) =
    (* idle gap before this interval, then the interval itself *)
    let rested =
      if iv.Profile.start > clock then
        step p state ~current:0.0 ~duration:(iv.Profile.start -. clock)
      else state
    in
    let after = step p rested ~current:iv.Profile.current ~duration:iv.Profile.duration in
    (after, iv.Profile.start +. iv.Profile.duration)
  in
  let state, clock =
    List.fold_left advance (full p, 0.0) (Profile.intervals clipped)
  in
  if at > clock then step p state ~current:0.0 ~duration:(at -. clock) else state

let sigma ?(params = default_params) profile ~at =
  let st = state_at params profile ~at in
  params.capacity -. (st.available /. params.c)

(* Suffix-time decomposition.  The per-interval affine maps above are
   simultaneously diagonalizable: total charge y0 = y1 + y2 follows
   y0' = y0 - I D (eigenvector (c, 1-c), eigenvalue 1), and the
   disequilibrium gamma = y1 - c y0 follows
     gamma' = r gamma - I (1-c)(1-r)/k'        with r = e^{-k' D}.
   A full battery starts at equilibrium (gamma = 0 exactly), so at the
   makespan of a gapless profile the recursion unrolls to a sum over
   intervals weighted by the product of the r's after each — i.e. by
   e^{-k' tail}.  Substituting into sigma = capacity - y1/c:

     sigma = sum_k [ I_k D_k
                     + ((1-c)/(c k')) I_k (1 - e^{-k' D_k}) e^{-k' tail_k} ]

   which is exactly the {!Model.incremental} contract: the charge
   integral plus a tail-weighted disequilibrium term.  A zero-duration
   interval contributes exactly 0 (the guard short-circuits; even
   without it, [1 -. exp 0.0] is exactly [0.]). *)
let incremental params =
  let k' = params.k_prime in
  let coef = (1.0 -. params.c) /. (params.c *. k') in
  { Model.term =
      (fun ~current ~duration ~tail ->
        if duration = 0.0 then 0.0
        else
          (current *. duration)
          +. (coef *. current
              *. (1.0 -. exp (-.k' *. duration))
              *. exp (-.k' *. tail)));
    tail_sensitive = true }

(* Population kernel: one backward sweep per candidate with a running
   product e^{-k' tail_k} = prod_{j>k} r_j — one [exp] per non-empty
   interval, against the two the incremental term pays.  The carry
   lives in a one-element float array (flat, so the inner loop
   allocates nothing). *)
let batch params =
  let k' = params.k_prime in
  let coef = (1.0 -. params.c) /. (params.c *. k') in
  { Model.batch_run =
      (fun ~n ~currents ~durations ~tails:_ ~sigmas ~lo ~hi ->
        let acc = Kahan.Acc.create () in
        let etail = Array.make 1 1.0 in
        for p = lo to hi - 1 do
          Kahan.Acc.reset acc;
          etail.(0) <- 1.0;
          let base = p * n in
          for k = n - 1 downto 0 do
            let i = currents.(base + k) and d = durations.(base + k) in
            if d <> 0.0 then begin
              let r = exp (-.k' *. d) in
              Kahan.Acc.add acc
                ((i *. d) +. (coef *. i *. (1.0 -. r) *. etail.(0)));
              etail.(0) <- etail.(0) *. r
            end
          done;
          sigmas.(p) <- Kahan.Acc.sum acc
        done) }

(* The eigen-split above is already a one-channel decay decomposition:
   the disequilibrium term relaxes at rate k' whatever follows the
   interval (rest included — zero current forces nothing), so the
   suffix-time identity extends verbatim to gapped profiles and to
   {!Periodic}'s repeated-cycle telescoping. *)
let decay params =
  let k' = params.k_prime in
  let coef = (1.0 -. params.c) /. (params.c *. k') in
  { Model.rates = [| k' |];
    weights =
      (fun ~current ~duration buf ->
        buf.(0) <- coef *. current *. (1.0 -. exp (-.k' *. duration)));
    charge = (fun ~current ~duration -> current *. duration) }

let model ?(params = default_params) () =
  { Model.name = "kibam"; sigma = (fun p ~at -> sigma ~params p ~at);
    incremental = Some (incremental params);
    stepper = None;
    batch = Some (batch params);
    decay = Some (decay params) }
