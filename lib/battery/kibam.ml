type params = {
  capacity : float;
  c : float;
  k_prime : float;
}

let make_params ~capacity ~c ~k_prime =
  if not (capacity > 0.0) then invalid_arg "Kibam.make_params: capacity <= 0";
  if not (c > 0.0 && c < 1.0) then invalid_arg "Kibam.make_params: c outside (0,1)";
  if not (k_prime > 0.0) then invalid_arg "Kibam.make_params: k_prime <= 0";
  { capacity; c; k_prime }

let default_params = make_params ~capacity:40375.0 ~c:0.5 ~k_prime:0.05

type state = { available : float; bound : float }

let full p = { available = p.c *. p.capacity; bound = (1.0 -. p.c) *. p.capacity }

(* Manwell–McGowan closed form for one constant-current interval.  With
   y0 the total charge at interval start and r = e^{-k' t}:
     y1(t) = y1 r + (y0 k' c - I)(1 - r)/k' - I c (k' t - 1 + r)/k'
     y2(t) = y0 - I t - y1(t)                (charge conservation)      *)
let step p { available = y1; bound = y2 } ~current ~duration =
  if current < 0.0 then invalid_arg "Kibam.step: negative current";
  if duration < 0.0 then invalid_arg "Kibam.step: negative duration";
  if duration = 0.0 then { available = y1; bound = y2 }
  else begin
    let k' = p.k_prime in
    let y0 = y1 +. y2 in
    let r = exp (-.k' *. duration) in
    let y1' =
      (y1 *. r)
      +. ((y0 *. k' *. p.c) -. current) *. (1.0 -. r) /. k'
      -. (current *. p.c *. ((k' *. duration) -. 1.0 +. r) /. k')
    in
    { available = y1'; bound = y0 -. (current *. duration) -. y1' }
  end

let state_at p profile ~at =
  if at < 0.0 then invalid_arg "Kibam.state_at: negative time";
  let clipped = Profile.truncate profile ~at in
  let advance (state, clock) (iv : Profile.interval) =
    (* idle gap before this interval, then the interval itself *)
    let rested =
      if iv.Profile.start > clock then
        step p state ~current:0.0 ~duration:(iv.Profile.start -. clock)
      else state
    in
    let after = step p rested ~current:iv.Profile.current ~duration:iv.Profile.duration in
    (after, iv.Profile.start +. iv.Profile.duration)
  in
  let state, clock =
    List.fold_left advance (full p, 0.0) (Profile.intervals clipped)
  in
  if at > clock then step p state ~current:0.0 ~duration:(at -. clock) else state

let sigma ?(params = default_params) profile ~at =
  let st = state_at params profile ~at in
  params.capacity -. (st.available /. params.c)

let model ?params () =
  { Model.name = "kibam"; sigma = (fun p ~at -> sigma ?params p ~at);
    incremental = None }
