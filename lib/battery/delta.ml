open Batsched_numeric

(* Mutable delta-evaluation state for one sequential (back-to-back)
   discharge schedule, observed at its makespan.

   Coordinates: position [k] holds an interval [(I_k, D_k)]; its
   suffix time [tail_k = sum_{j>k} D_j] is the load duration between
   the interval's end and the observation instant.  Per
   [Model.incremental], sigma decomposes as [sum_k term (I_k, D_k,
   tail_k)] — so an adjacent swap at [k] perturbs the two terms at
   [k, k+1] (the tails before [k] keep their exact value: the suffix
   multiset is unchanged), and a duration change at position [i]
   perturbs the tails — hence, for a tail-sensitive model, the terms —
   at [0..i] only.

   Numerics: tails and the running totals are compensated
   (Kahan–Neumaier) pairs.  Every stored tail is an exact compensated
   chain over some ordering of the true suffix multiset — moves
   never "patch" a tail arithmetically, they re-derive it from the
   unchanged suffix state — so tail error stays at the one-summation
   level regardless of how many moves committed.  The sigma total is
   delta-updated (remove old terms, add new ones) and re-summed from
   the stored terms every [max 32 n] commits to bound drift.  Agreement
   with the full evaluator is within 1e-9 relative; it is not
   bit-identical, because the full path derives each tail as
   [at - start - duration] in forward coordinates. *)

let[@inline] nadd t c x =
  let s = t +. x in
  let c' =
    if Float.abs t >= Float.abs x then c +. ((t -. s) +. x)
    else c +. ((x -. s) +. t)
  in
  (s, c')

type pending =
  | No_move
  | Keep
    (* candidate is value-identical to the committed state: swapping
       two identical intervals, or setting a position to its current
       values.  Returning the committed sigma bit-for-bit here matters
       for search loops: the full evaluator also yields an exact tie on
       such candidates, and an ulp of delta noise would flip exact
       [e <= cur] comparisons — e.g. making a Metropolis rule consume
       an RNG draw the full path does not. *)
  | Swap of {
      k : int;
      tail_t : float;       (* new suffix sum at position k *)
      tail_c : float;
      term_lo : float;      (* new term at position k *)
      term_hi : float;      (* new term at position k+1 *)
      sig_t : float;
      sig_c : float;
    }
  | Set of {
      pos : int;
      current : float;
      duration : float;
      lo : int;             (* candidate terms live in cterm.(lo..pos) *)
      sig_t : float;
      sig_c : float;
      fin_t : float;
      fin_c : float;
    }
  | Full_swap of { k : int; sigma : float; finish : float }
  | Full_set of {
      pos : int;
      current : float;
      duration : float;
      sigma : float;
      finish : float;
    }

(* Checkpointed integration state for stepper models (the diffusion
   PDE): [snaps] holds the integration state {e entering} position
   [j * stride] for each snapshot index [j] (snapshot 0 is the
   fully-charged initial state), flattened into one float array so a
   restore is a single [Array.blit].  A candidate move at position [i]
   restores the nearest snapshot at or before [i] and re-integrates
   the suffix — O(n - i + stride) advances instead of O(n) — which is
   bit-identical to a from-scratch integration because the stepper
   advances each interval independently of absolute time.  Snapshots
   after a committed move's position are stale; [valid] counts the
   trusted prefix and revalidation is lazy (paid on the next candidate
   that needs a later snapshot). *)
type ck = {
  ops : Model.stepper_ops;
  dim : int;
  work : float array;
  mutable stride : int;
  mutable nsnaps : int;
  mutable snaps : float array;
  mutable valid : int;          (* snapshots 0..valid-1 match committed state *)
}

type t = {
  model : Model.t;
  inc : Model.incremental option;
  ck : ck option;
  mutable n : int;
  mutable currents : float array;
  mutable durations : float array;
  (* compensated suffix-duration sums: tail of position k excludes D_k *)
  mutable tail_t : float array;
  mutable tail_c : float array;
  mutable terms : float array;      (* per-position contribution *)
  (* candidate scratch for Set moves *)
  mutable ctail_t : float array;
  mutable ctail_c : float array;
  mutable cterm : float array;
  (* committed totals *)
  mutable sig_t : float;
  mutable sig_c : float;
  mutable fin_t : float;
  mutable fin_c : float;
  mutable commits : int;            (* since the last full re-sum *)
  mutable pending : pending;
}

let create (model : Model.t) =
  { model;
    inc = model.Model.incremental;
    ck =
      (match model.Model.incremental, model.Model.stepper with
      | None, Some st ->
          Some
            { ops = st.Model.fresh ();
              dim = st.Model.state_dim;
              work = Array.make st.Model.state_dim 0.0;
              stride = 1;
              nsnaps = 0;
              snaps = [||];
              valid = 0 }
      | _ -> None);
    n = 0;
    currents = [||];
    durations = [||];
    tail_t = [||];
    tail_c = [||];
    terms = [||];
    ctail_t = [||];
    ctail_c = [||];
    cterm = [||];
    sig_t = 0.0;
    sig_c = 0.0;
    fin_t = 0.0;
    fin_c = 0.0;
    commits = 0;
    pending = No_move }

let ensure_capacity t n =
  if Array.length t.currents < n then begin
    let cap = ref (Stdlib.max 8 (Array.length t.currents)) in
    while !cap < n do
      cap := !cap * 2
    done;
    t.currents <- Array.make !cap 0.0;
    t.durations <- Array.make !cap 0.0;
    t.tail_t <- Array.make !cap 0.0;
    t.tail_c <- Array.make !cap 0.0;
    t.terms <- Array.make !cap 0.0;
    t.ctail_t <- Array.make !cap 0.0;
    t.ctail_c <- Array.make !cap 0.0;
    t.cterm <- Array.make !cap 0.0
  end

let length t = t.n

let current t i =
  if i < 0 || i >= t.n then invalid_arg "Delta.current: position out of range";
  t.currents.(i)

let duration t i =
  if i < 0 || i >= t.n then invalid_arg "Delta.duration: position out of range";
  t.durations.(i)

let sigma t = t.sig_t +. t.sig_c

let finish t = t.fin_t +. t.fin_c

let check_point current duration =
  if not (Float.is_finite current && Float.is_finite duration) then
    invalid_arg "Delta: non-finite interval field";
  if current < 0.0 then invalid_arg "Delta: negative current";
  if duration < 0.0 then invalid_arg "Delta: negative duration"

(* Fallback for models without an incremental decomposition: cost the
   whole candidate through the model's own sigma.  O(n) per candidate,
   plus a profile allocation — the price of an opaque model. *)
let full_eval t =
  let probe = Probe.local () in
  probe.Probe.delta_full_evals <- probe.Probe.delta_full_evals + 1;
  Probe.bump_named probe ("delta_full_evals/" ^ t.model.Model.name) 1;
  let p = Profile.sequential_fn ~n:t.n (fun i -> (t.currents.(i), t.durations.(i))) in
  (Model.sigma_end t.model p, Profile.length p)

(* -- checkpointed stepper path ------------------------------------- *)

let[@inline] ck_snap_of ck pos = pos / ck.stride

(* Re-derive snapshots valid..j from the last trusted one, integrating
   the committed intervals.  Leaves [valid > j]. *)
let ck_ensure t ck j =
  if j >= ck.valid then begin
    let probe = Probe.local () in
    probe.Probe.delta_ck_restores <- probe.Probe.delta_ck_restores + 1;
    let from = (ck.valid - 1) * ck.stride in
    Array.blit ck.snaps ((ck.valid - 1) * ck.dim) ck.work 0 ck.dim;
    for pos = from to (j * ck.stride) - 1 do
      ck.ops.Model.advance ck.work ~current:t.currents.(pos)
        ~duration:t.durations.(pos);
      if (pos + 1) mod ck.stride = 0 then begin
        let s = (pos + 1) / ck.stride in
        Array.blit ck.work 0 ck.snaps (s * ck.dim) ck.dim;
        ck.valid <- s + 1
      end
    done;
    probe.Probe.delta_ck_advances <-
      probe.Probe.delta_ck_advances + ((j * ck.stride) - from)
  end

(* Cost a candidate whose interval at position [p] is [point p]:
   restore the snapshot preceding the first modified position [mpos]
   and re-integrate the suffix.  Returns the candidate sigma. *)
let ck_eval t ck ~mpos ~point =
  let probe = Probe.local () in
  let j = ck_snap_of ck mpos in
  ck_ensure t ck j;
  Array.blit ck.snaps (j * ck.dim) ck.work 0 ck.dim;
  probe.Probe.delta_ck_restores <- probe.Probe.delta_ck_restores + 1;
  let from = j * ck.stride in
  for pos = from to t.n - 1 do
    let current, duration = point pos in
    ck.ops.Model.advance ck.work ~current ~duration
  done;
  probe.Probe.delta_ck_advances <-
    probe.Probe.delta_ck_advances + (t.n - from);
  ck.ops.Model.observe ck.work

(* Full integration from the initial state, (re)building every
   snapshot.  Sets the committed sigma. *)
let ck_load t ck =
  let n = t.n in
  ck.stride <- Stdlib.max 1 (int_of_float (sqrt (float_of_int n)));
  ck.nsnaps <- Stdlib.max 1 ((n + ck.stride - 1) / ck.stride);
  if Array.length ck.snaps < ck.nsnaps * ck.dim then
    ck.snaps <- Array.make (ck.nsnaps * ck.dim) 0.0;
  ck.ops.Model.start ck.work;
  Array.blit ck.work 0 ck.snaps 0 ck.dim;
  ck.valid <- 1;
  for pos = 0 to n - 1 do
    ck.ops.Model.advance ck.work ~current:t.currents.(pos)
      ~duration:t.durations.(pos);
    let s = (pos + 1) / ck.stride in
    if (pos + 1) mod ck.stride = 0 && s < ck.nsnaps then begin
      Array.blit ck.work 0 ck.snaps (s * ck.dim) ck.dim;
      ck.valid <- s + 1
    end
  done;
  let probe = Probe.local () in
  probe.Probe.delta_ck_advances <- probe.Probe.delta_ck_advances + n;
  t.sig_t <- ck.ops.Model.observe ck.work;
  t.sig_c <- 0.0

let resum t =
  (match t.inc with
  | None -> ()
  | Some _ ->
      let st = ref 0.0 and sc = ref 0.0 in
      for k = 0 to t.n - 1 do
        let a, b = nadd !st !sc t.terms.(k) in
        st := a;
        sc := b
      done;
      t.sig_t <- !st;
      t.sig_c <- !sc);
  t.commits <- 0

let load t ~n ~point =
  if n < 0 then invalid_arg "Delta.load: negative count";
  ensure_capacity t n;
  t.n <- n;
  t.pending <- No_move;
  for i = 0 to n - 1 do
    let current, duration = point i in
    check_point current duration;
    t.currents.(i) <- current;
    t.durations.(i) <- duration
  done;
  (* suffix sums, accumulated from the end; the final state is the
     total duration = the finish time *)
  let tt = ref 0.0 and tc = ref 0.0 in
  for k = n - 1 downto 0 do
    t.tail_t.(k) <- !tt;
    t.tail_c.(k) <- !tc;
    let a, b = nadd !tt !tc t.durations.(k) in
    tt := a;
    tc := b
  done;
  t.fin_t <- !tt;
  t.fin_c <- !tc;
  (match t.inc, t.ck with
  | Some inc, _ ->
      for k = 0 to n - 1 do
        t.terms.(k) <-
          inc.Model.term ~current:t.currents.(k) ~duration:t.durations.(k)
            ~tail:(t.tail_t.(k) +. t.tail_c.(k))
      done;
      resum t
  | None, Some ck ->
      (* the compensated finish from the tail chain above stands; the
         sigma comes from a full checkpointed integration *)
      ck_load t ck
  | None, None ->
      let s, f = full_eval t in
      t.sig_t <- s;
      t.sig_c <- 0.0;
      t.fin_t <- f;
      t.fin_c <- 0.0);
  t.commits <- 0

let init model ~n ~point =
  let t = create model in
  load t ~n ~point;
  t

let of_profile model p =
  let ivs = Array.of_list (Profile.intervals p) in
  (* Delta evaluation assumes back-to-back load from t = 0: a profile
     with idle gaps (Profile.with_idle, periodic shapes) has no
     suffix-time decomposition at the makespan, so reject it — callers
     that need gaps must use the full model path. *)
  let clock = ref 0.0 in
  Array.iter
    (fun (iv : Profile.interval) ->
      if Float.abs (iv.Profile.start -. !clock) > 1e-9 then
        invalid_arg "Delta.of_profile: profile has idle gaps";
      clock := iv.Profile.start +. iv.Profile.duration)
    ivs;
  init model ~n:(Array.length ivs) ~point:(fun i ->
      (ivs.(i).Profile.current, ivs.(i).Profile.duration))

let check_no_pending t name =
  match t.pending with
  | No_move -> ()
  | _ -> invalid_arg ("Delta." ^ name ^ ": uncommitted pending move")

let[@inline] swap_entries a i j =
  let tmp = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- tmp

let try_swap t k =
  check_no_pending t "try_swap";
  if k < 0 || k + 1 >= t.n then
    invalid_arg "Delta.try_swap: position out of range";
  let probe = Probe.local () in
  probe.Probe.delta_swaps <- probe.Probe.delta_swaps + 1;
  if t.currents.(k) = t.currents.(k + 1) && t.durations.(k) = t.durations.(k + 1)
  then begin
    t.pending <- Keep;
    (sigma t, finish t)
  end
  else
  match t.inc with
  | None ->
      (match t.ck with
      | Some ck ->
          (* the swap leaves the makespan alone; only the integration
             order of the two intervals changes *)
          let sigma =
            ck_eval t ck ~mpos:k ~point:(fun pos ->
                let p =
                  if pos = k then k + 1 else if pos = k + 1 then k else pos
                in
                (t.currents.(p), t.durations.(p)))
          in
          let fin = finish t in
          t.pending <- Full_swap { k; sigma; finish = fin };
          (sigma, fin)
      | None ->
          swap_entries t.currents k (k + 1);
          swap_entries t.durations k (k + 1);
          let sigma, finish = full_eval t in
          swap_entries t.currents k (k + 1);
          swap_entries t.durations k (k + 1);
          t.pending <- Full_swap { k; sigma; finish };
          (sigma, finish))
  | Some inc ->
      (* after the swap, position k holds old interval k+1 with tail
         tail_{k+1} + D_k, and position k+1 holds old interval k with
         tail tail_{k+1}; everything else — including every tail before
         k, whose suffix multiset is unchanged — keeps its stored
         value *)
      let tl_t = t.tail_t.(k + 1) and tl_c = t.tail_c.(k + 1) in
      let ntt, ntc = nadd tl_t tl_c t.durations.(k) in
      if not inc.Model.tail_sensitive then begin
        (* the two terms trade places; sigma and finish are unchanged *)
        t.pending <-
          Swap
            { k;
              tail_t = ntt;
              tail_c = ntc;
              term_lo = t.terms.(k + 1);
              term_hi = t.terms.(k);
              sig_t = t.sig_t;
              sig_c = t.sig_c };
        (sigma t, finish t)
      end
      else begin
        probe.Probe.delta_terms <- probe.Probe.delta_terms + 2;
        let term_lo =
          inc.Model.term ~current:t.currents.(k + 1)
            ~duration:t.durations.(k + 1) ~tail:(ntt +. ntc)
        in
        let term_hi =
          inc.Model.term ~current:t.currents.(k) ~duration:t.durations.(k)
            ~tail:(tl_t +. tl_c)
        in
        let st, sc = nadd t.sig_t t.sig_c (-.t.terms.(k)) in
        let st, sc = nadd st sc term_lo in
        let st, sc = nadd st sc (-.t.terms.(k + 1)) in
        let st, sc = nadd st sc term_hi in
        t.pending <-
          Swap { k; tail_t = ntt; tail_c = ntc; term_lo; term_hi;
                 sig_t = st; sig_c = sc };
        (st +. sc, finish t)
      end

let try_set t pos ~current ~duration =
  check_no_pending t "try_set";
  if pos < 0 || pos >= t.n then
    invalid_arg "Delta.try_set: position out of range";
  check_point current duration;
  let probe = Probe.local () in
  probe.Probe.delta_repoints <- probe.Probe.delta_repoints + 1;
  if current = t.currents.(pos) && duration = t.durations.(pos) then begin
    t.pending <- Keep;
    (sigma t, finish t)
  end
  else
  match t.inc with
  | None ->
      (match t.ck with
      | Some ck ->
          let sigma =
            ck_eval t ck ~mpos:pos ~point:(fun p ->
                if p = pos then (current, duration)
                else (t.currents.(p), t.durations.(p)))
          in
          (* fresh compensated makespan with the replaced duration — an
             O(n) float sum, noise next to the integration above *)
          let ft = ref 0.0 and fc = ref 0.0 in
          for p = 0 to t.n - 1 do
            let d = if p = pos then duration else t.durations.(p) in
            let a, b = nadd !ft !fc d in
            ft := a;
            fc := b
          done;
          let fin = !ft +. !fc in
          t.pending <- Full_set { pos; current; duration; sigma; finish = fin };
          (sigma, fin)
      | None ->
          let old_c = t.currents.(pos) and old_d = t.durations.(pos) in
          t.currents.(pos) <- current;
          t.durations.(pos) <- duration;
          let sigma, finish = full_eval t in
          t.currents.(pos) <- old_c;
          t.durations.(pos) <- old_d;
          t.pending <- Full_set { pos; current; duration; sigma; finish };
          (sigma, finish))
  | Some inc ->
      (* candidate suffix sums for positions 0..pos-1: the chain from
         the unchanged tail at [pos] through the new duration *)
      let tt = ref t.tail_t.(pos) and tc = ref t.tail_c.(pos) in
      let a, b = nadd !tt !tc duration in
      tt := a;
      tc := b;
      for j = pos - 1 downto 0 do
        t.ctail_t.(j) <- !tt;
        t.ctail_c.(j) <- !tc;
        let a, b = nadd !tt !tc t.durations.(j) in
        tt := a;
        tc := b
      done;
      let fin_t = !tt and fin_c = !tc in
      let lo = if inc.Model.tail_sensitive then 0 else pos in
      probe.Probe.delta_terms <- probe.Probe.delta_terms + (pos + 1 - lo);
      t.cterm.(pos) <-
        inc.Model.term ~current ~duration
          ~tail:(t.tail_t.(pos) +. t.tail_c.(pos));
      if inc.Model.tail_sensitive then
        for j = 0 to pos - 1 do
          t.cterm.(j) <-
            inc.Model.term ~current:t.currents.(j) ~duration:t.durations.(j)
              ~tail:(t.ctail_t.(j) +. t.ctail_c.(j))
        done;
      let sig_t, sig_c =
        if inc.Model.tail_sensitive && 2 * (pos + 1) >= t.n then begin
          (* a fresh compensated sum over the candidate terms is cheaper
             than 2(pos+1) delta updates — and resets any drift *)
          let st = ref 0.0 and sc = ref 0.0 in
          for j = 0 to t.n - 1 do
            let v = if j <= pos then t.cterm.(j) else t.terms.(j) in
            let a, b = nadd !st !sc v in
            st := a;
            sc := b
          done;
          (!st, !sc)
        end
        else begin
          let st = ref t.sig_t and sc = ref t.sig_c in
          for j = lo to pos do
            let a, b = nadd !st !sc (-.t.terms.(j)) in
            let a, b = nadd a b t.cterm.(j) in
            st := a;
            sc := b
          done;
          (!st, !sc)
        end
      in
      t.pending <- Set { pos; current; duration; lo; sig_t; sig_c; fin_t; fin_c };
      (sig_t +. sig_c, fin_t +. fin_c)

let resum_every t = Stdlib.max 32 t.n

let commit t =
  let probe = Probe.local () in
  (match t.pending with
  | No_move -> invalid_arg "Delta.commit: no pending move"
  | Keep -> ()
  | Swap { k; tail_t; tail_c; term_lo; term_hi; sig_t; sig_c } ->
      swap_entries t.currents k (k + 1);
      swap_entries t.durations k (k + 1);
      t.tail_t.(k) <- tail_t;
      t.tail_c.(k) <- tail_c;
      t.terms.(k) <- term_lo;
      t.terms.(k + 1) <- term_hi;
      t.sig_t <- sig_t;
      t.sig_c <- sig_c
  | Set { pos; current; duration; lo; sig_t; sig_c; fin_t; fin_c } ->
      t.currents.(pos) <- current;
      t.durations.(pos) <- duration;
      Array.blit t.ctail_t 0 t.tail_t 0 pos;
      Array.blit t.ctail_c 0 t.tail_c 0 pos;
      Array.blit t.cterm lo t.terms lo (pos + 1 - lo);
      t.sig_t <- sig_t;
      t.sig_c <- sig_c;
      t.fin_t <- fin_t;
      t.fin_c <- fin_c
  | Full_swap { k; sigma; finish } ->
      swap_entries t.currents k (k + 1);
      swap_entries t.durations k (k + 1);
      t.sig_t <- sigma;
      t.sig_c <- 0.0;
      t.fin_t <- finish;
      t.fin_c <- 0.0;
      (match t.ck with
      | Some ck -> ck.valid <- Stdlib.min ck.valid (ck_snap_of ck k + 1)
      | None -> ())
  | Full_set { pos; current; duration; sigma; finish } ->
      t.currents.(pos) <- current;
      t.durations.(pos) <- duration;
      t.sig_t <- sigma;
      t.sig_c <- 0.0;
      t.fin_t <- finish;
      t.fin_c <- 0.0;
      (match t.ck with
      | Some ck -> ck.valid <- Stdlib.min ck.valid (ck_snap_of ck pos + 1)
      | None -> ()));
  t.pending <- No_move;
  probe.Probe.delta_commits <- probe.Probe.delta_commits + 1;
  t.commits <- t.commits + 1;
  if t.commits >= resum_every t then begin
    (* batch size distribution: commits absorbed between full
       re-summations (the compensated-sum refresh cadence) *)
    if !Probe.observing then
      Probe.observe "delta/commit_batch" (float_of_int t.commits);
    resum t
  end

let discard t =
  (match t.pending with
  | No_move -> invalid_arg "Delta.discard: no pending move"
  | _ -> ());
  t.pending <- No_move;
  let probe = Probe.local () in
  probe.Probe.delta_discards <- probe.Probe.delta_discards + 1

let refresh t = resum t
