open Batsched_numeric

(* Mutable delta-evaluation state for one sequential (back-to-back)
   discharge schedule, observed at its makespan.

   Coordinates: position [k] holds an interval [(I_k, D_k)]; its
   suffix time [tail_k = sum_{j>k} D_j] is the load duration between
   the interval's end and the observation instant.  Per
   [Model.incremental], sigma decomposes as [sum_k term (I_k, D_k,
   tail_k)] — so an adjacent swap at [k] perturbs the two terms at
   [k, k+1] (the tails before [k] keep their exact value: the suffix
   multiset is unchanged), and a duration change at position [i]
   perturbs the tails — hence, for a tail-sensitive model, the terms —
   at [0..i] only.

   Numerics: tails and the running totals are compensated
   (Kahan–Neumaier) pairs.  Every stored tail is an exact compensated
   chain over some ordering of the true suffix multiset — moves
   never "patch" a tail arithmetically, they re-derive it from the
   unchanged suffix state — so tail error stays at the one-summation
   level regardless of how many moves committed.  The sigma total is
   delta-updated (remove old terms, add new ones) and re-summed from
   the stored terms every [max 32 n] commits to bound drift.  Agreement
   with the full evaluator is within 1e-9 relative; it is not
   bit-identical, because the full path derives each tail as
   [at - start - duration] in forward coordinates. *)

let[@inline] nadd t c x =
  let s = t +. x in
  let c' =
    if Float.abs t >= Float.abs x then c +. ((t -. s) +. x)
    else c +. ((x -. s) +. t)
  in
  (s, c')

type pending =
  | No_move
  | Keep
    (* candidate is value-identical to the committed state: swapping
       two identical intervals, or setting a position to its current
       values.  Returning the committed sigma bit-for-bit here matters
       for search loops: the full evaluator also yields an exact tie on
       such candidates, and an ulp of delta noise would flip exact
       [e <= cur] comparisons — e.g. making a Metropolis rule consume
       an RNG draw the full path does not. *)
  | Swap of {
      k : int;
      tail_t : float;       (* new suffix sum at position k *)
      tail_c : float;
      term_lo : float;      (* new term at position k *)
      term_hi : float;      (* new term at position k+1 *)
      sig_t : float;
      sig_c : float;
    }
  | Set of {
      pos : int;
      current : float;
      duration : float;
      lo : int;             (* candidate terms live in cterm.(lo..pos) *)
      sig_t : float;
      sig_c : float;
      fin_t : float;
      fin_c : float;
    }
  | Full_swap of { k : int; sigma : float; finish : float }
  | Full_set of {
      pos : int;
      current : float;
      duration : float;
      sigma : float;
      finish : float;
    }

type t = {
  model : Model.t;
  inc : Model.incremental option;
  mutable n : int;
  mutable currents : float array;
  mutable durations : float array;
  (* compensated suffix-duration sums: tail of position k excludes D_k *)
  mutable tail_t : float array;
  mutable tail_c : float array;
  mutable terms : float array;      (* per-position contribution *)
  (* candidate scratch for Set moves *)
  mutable ctail_t : float array;
  mutable ctail_c : float array;
  mutable cterm : float array;
  (* committed totals *)
  mutable sig_t : float;
  mutable sig_c : float;
  mutable fin_t : float;
  mutable fin_c : float;
  mutable commits : int;            (* since the last full re-sum *)
  mutable pending : pending;
}

let create (model : Model.t) =
  { model;
    inc = model.Model.incremental;
    n = 0;
    currents = [||];
    durations = [||];
    tail_t = [||];
    tail_c = [||];
    terms = [||];
    ctail_t = [||];
    ctail_c = [||];
    cterm = [||];
    sig_t = 0.0;
    sig_c = 0.0;
    fin_t = 0.0;
    fin_c = 0.0;
    commits = 0;
    pending = No_move }

let ensure_capacity t n =
  if Array.length t.currents < n then begin
    let cap = ref (Stdlib.max 8 (Array.length t.currents)) in
    while !cap < n do
      cap := !cap * 2
    done;
    t.currents <- Array.make !cap 0.0;
    t.durations <- Array.make !cap 0.0;
    t.tail_t <- Array.make !cap 0.0;
    t.tail_c <- Array.make !cap 0.0;
    t.terms <- Array.make !cap 0.0;
    t.ctail_t <- Array.make !cap 0.0;
    t.ctail_c <- Array.make !cap 0.0;
    t.cterm <- Array.make !cap 0.0
  end

let length t = t.n

let current t i =
  if i < 0 || i >= t.n then invalid_arg "Delta.current: position out of range";
  t.currents.(i)

let duration t i =
  if i < 0 || i >= t.n then invalid_arg "Delta.duration: position out of range";
  t.durations.(i)

let sigma t = t.sig_t +. t.sig_c

let finish t = t.fin_t +. t.fin_c

let check_point current duration =
  if not (Float.is_finite current && Float.is_finite duration) then
    invalid_arg "Delta: non-finite interval field";
  if current < 0.0 then invalid_arg "Delta: negative current";
  if duration < 0.0 then invalid_arg "Delta: negative duration"

(* Fallback for models without an incremental decomposition: cost the
   whole candidate through the model's own sigma.  O(n) per candidate,
   plus a profile allocation — the price of an opaque model. *)
let full_eval t =
  let probe = Probe.local () in
  probe.Probe.delta_full_evals <- probe.Probe.delta_full_evals + 1;
  let p = Profile.sequential_fn ~n:t.n (fun i -> (t.currents.(i), t.durations.(i))) in
  (Model.sigma_end t.model p, Profile.length p)

let resum t =
  (match t.inc with
  | None -> ()
  | Some _ ->
      let st = ref 0.0 and sc = ref 0.0 in
      for k = 0 to t.n - 1 do
        let a, b = nadd !st !sc t.terms.(k) in
        st := a;
        sc := b
      done;
      t.sig_t <- !st;
      t.sig_c <- !sc);
  t.commits <- 0

let load t ~n ~point =
  if n < 0 then invalid_arg "Delta.load: negative count";
  ensure_capacity t n;
  t.n <- n;
  t.pending <- No_move;
  for i = 0 to n - 1 do
    let current, duration = point i in
    check_point current duration;
    t.currents.(i) <- current;
    t.durations.(i) <- duration
  done;
  (* suffix sums, accumulated from the end; the final state is the
     total duration = the finish time *)
  let tt = ref 0.0 and tc = ref 0.0 in
  for k = n - 1 downto 0 do
    t.tail_t.(k) <- !tt;
    t.tail_c.(k) <- !tc;
    let a, b = nadd !tt !tc t.durations.(k) in
    tt := a;
    tc := b
  done;
  t.fin_t <- !tt;
  t.fin_c <- !tc;
  (match t.inc with
  | Some inc ->
      for k = 0 to n - 1 do
        t.terms.(k) <-
          inc.Model.term ~current:t.currents.(k) ~duration:t.durations.(k)
            ~tail:(t.tail_t.(k) +. t.tail_c.(k))
      done;
      resum t
  | None ->
      let s, f = full_eval t in
      t.sig_t <- s;
      t.sig_c <- 0.0;
      t.fin_t <- f;
      t.fin_c <- 0.0);
  t.commits <- 0

let init model ~n ~point =
  let t = create model in
  load t ~n ~point;
  t

let of_profile model p =
  let ivs = Array.of_list (Profile.intervals p) in
  (* Delta evaluation assumes back-to-back load from t = 0: a profile
     with idle gaps (Profile.with_idle, periodic shapes) has no
     suffix-time decomposition at the makespan, so reject it — callers
     that need gaps must use the full model path. *)
  let clock = ref 0.0 in
  Array.iter
    (fun (iv : Profile.interval) ->
      if Float.abs (iv.Profile.start -. !clock) > 1e-9 then
        invalid_arg "Delta.of_profile: profile has idle gaps";
      clock := iv.Profile.start +. iv.Profile.duration)
    ivs;
  init model ~n:(Array.length ivs) ~point:(fun i ->
      (ivs.(i).Profile.current, ivs.(i).Profile.duration))

let check_no_pending t name =
  match t.pending with
  | No_move -> ()
  | _ -> invalid_arg ("Delta." ^ name ^ ": uncommitted pending move")

let[@inline] swap_entries a i j =
  let tmp = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- tmp

let try_swap t k =
  check_no_pending t "try_swap";
  if k < 0 || k + 1 >= t.n then
    invalid_arg "Delta.try_swap: position out of range";
  let probe = Probe.local () in
  probe.Probe.delta_swaps <- probe.Probe.delta_swaps + 1;
  if t.currents.(k) = t.currents.(k + 1) && t.durations.(k) = t.durations.(k + 1)
  then begin
    t.pending <- Keep;
    (sigma t, finish t)
  end
  else
  match t.inc with
  | None ->
      swap_entries t.currents k (k + 1);
      swap_entries t.durations k (k + 1);
      let sigma, finish = full_eval t in
      swap_entries t.currents k (k + 1);
      swap_entries t.durations k (k + 1);
      t.pending <- Full_swap { k; sigma; finish };
      (sigma, finish)
  | Some inc ->
      (* after the swap, position k holds old interval k+1 with tail
         tail_{k+1} + D_k, and position k+1 holds old interval k with
         tail tail_{k+1}; everything else — including every tail before
         k, whose suffix multiset is unchanged — keeps its stored
         value *)
      let tl_t = t.tail_t.(k + 1) and tl_c = t.tail_c.(k + 1) in
      let ntt, ntc = nadd tl_t tl_c t.durations.(k) in
      if not inc.Model.tail_sensitive then begin
        (* the two terms trade places; sigma and finish are unchanged *)
        t.pending <-
          Swap
            { k;
              tail_t = ntt;
              tail_c = ntc;
              term_lo = t.terms.(k + 1);
              term_hi = t.terms.(k);
              sig_t = t.sig_t;
              sig_c = t.sig_c };
        (sigma t, finish t)
      end
      else begin
        probe.Probe.delta_terms <- probe.Probe.delta_terms + 2;
        let term_lo =
          inc.Model.term ~current:t.currents.(k + 1)
            ~duration:t.durations.(k + 1) ~tail:(ntt +. ntc)
        in
        let term_hi =
          inc.Model.term ~current:t.currents.(k) ~duration:t.durations.(k)
            ~tail:(tl_t +. tl_c)
        in
        let st, sc = nadd t.sig_t t.sig_c (-.t.terms.(k)) in
        let st, sc = nadd st sc term_lo in
        let st, sc = nadd st sc (-.t.terms.(k + 1)) in
        let st, sc = nadd st sc term_hi in
        t.pending <-
          Swap { k; tail_t = ntt; tail_c = ntc; term_lo; term_hi;
                 sig_t = st; sig_c = sc };
        (st +. sc, finish t)
      end

let try_set t pos ~current ~duration =
  check_no_pending t "try_set";
  if pos < 0 || pos >= t.n then
    invalid_arg "Delta.try_set: position out of range";
  check_point current duration;
  let probe = Probe.local () in
  probe.Probe.delta_repoints <- probe.Probe.delta_repoints + 1;
  if current = t.currents.(pos) && duration = t.durations.(pos) then begin
    t.pending <- Keep;
    (sigma t, finish t)
  end
  else
  match t.inc with
  | None ->
      let old_c = t.currents.(pos) and old_d = t.durations.(pos) in
      t.currents.(pos) <- current;
      t.durations.(pos) <- duration;
      let sigma, finish = full_eval t in
      t.currents.(pos) <- old_c;
      t.durations.(pos) <- old_d;
      t.pending <- Full_set { pos; current; duration; sigma; finish };
      (sigma, finish)
  | Some inc ->
      (* candidate suffix sums for positions 0..pos-1: the chain from
         the unchanged tail at [pos] through the new duration *)
      let tt = ref t.tail_t.(pos) and tc = ref t.tail_c.(pos) in
      let a, b = nadd !tt !tc duration in
      tt := a;
      tc := b;
      for j = pos - 1 downto 0 do
        t.ctail_t.(j) <- !tt;
        t.ctail_c.(j) <- !tc;
        let a, b = nadd !tt !tc t.durations.(j) in
        tt := a;
        tc := b
      done;
      let fin_t = !tt and fin_c = !tc in
      let lo = if inc.Model.tail_sensitive then 0 else pos in
      probe.Probe.delta_terms <- probe.Probe.delta_terms + (pos + 1 - lo);
      t.cterm.(pos) <-
        inc.Model.term ~current ~duration
          ~tail:(t.tail_t.(pos) +. t.tail_c.(pos));
      if inc.Model.tail_sensitive then
        for j = 0 to pos - 1 do
          t.cterm.(j) <-
            inc.Model.term ~current:t.currents.(j) ~duration:t.durations.(j)
              ~tail:(t.ctail_t.(j) +. t.ctail_c.(j))
        done;
      let sig_t, sig_c =
        if inc.Model.tail_sensitive && 2 * (pos + 1) >= t.n then begin
          (* a fresh compensated sum over the candidate terms is cheaper
             than 2(pos+1) delta updates — and resets any drift *)
          let st = ref 0.0 and sc = ref 0.0 in
          for j = 0 to t.n - 1 do
            let v = if j <= pos then t.cterm.(j) else t.terms.(j) in
            let a, b = nadd !st !sc v in
            st := a;
            sc := b
          done;
          (!st, !sc)
        end
        else begin
          let st = ref t.sig_t and sc = ref t.sig_c in
          for j = lo to pos do
            let a, b = nadd !st !sc (-.t.terms.(j)) in
            let a, b = nadd a b t.cterm.(j) in
            st := a;
            sc := b
          done;
          (!st, !sc)
        end
      in
      t.pending <- Set { pos; current; duration; lo; sig_t; sig_c; fin_t; fin_c };
      (sig_t +. sig_c, fin_t +. fin_c)

let resum_every t = Stdlib.max 32 t.n

let commit t =
  let probe = Probe.local () in
  (match t.pending with
  | No_move -> invalid_arg "Delta.commit: no pending move"
  | Keep -> ()
  | Swap { k; tail_t; tail_c; term_lo; term_hi; sig_t; sig_c } ->
      swap_entries t.currents k (k + 1);
      swap_entries t.durations k (k + 1);
      t.tail_t.(k) <- tail_t;
      t.tail_c.(k) <- tail_c;
      t.terms.(k) <- term_lo;
      t.terms.(k + 1) <- term_hi;
      t.sig_t <- sig_t;
      t.sig_c <- sig_c
  | Set { pos; current; duration; lo; sig_t; sig_c; fin_t; fin_c } ->
      t.currents.(pos) <- current;
      t.durations.(pos) <- duration;
      Array.blit t.ctail_t 0 t.tail_t 0 pos;
      Array.blit t.ctail_c 0 t.tail_c 0 pos;
      Array.blit t.cterm lo t.terms lo (pos + 1 - lo);
      t.sig_t <- sig_t;
      t.sig_c <- sig_c;
      t.fin_t <- fin_t;
      t.fin_c <- fin_c
  | Full_swap { k; sigma; finish } ->
      swap_entries t.currents k (k + 1);
      swap_entries t.durations k (k + 1);
      t.sig_t <- sigma;
      t.sig_c <- 0.0;
      t.fin_t <- finish;
      t.fin_c <- 0.0
  | Full_set { pos; current; duration; sigma; finish } ->
      t.currents.(pos) <- current;
      t.durations.(pos) <- duration;
      t.sig_t <- sigma;
      t.sig_c <- 0.0;
      t.fin_t <- finish;
      t.fin_c <- 0.0);
  t.pending <- No_move;
  probe.Probe.delta_commits <- probe.Probe.delta_commits + 1;
  t.commits <- t.commits + 1;
  if t.commits >= resum_every t then resum t

let discard t =
  (match t.pending with
  | No_move -> invalid_arg "Delta.discard: no pending move"
  | _ -> ());
  t.pending <- No_move;
  let probe = Probe.local () in
  probe.Probe.delta_discards <- probe.Probe.delta_discards + 1

let refresh t = resum t
