open Batsched_numeric

type params = {
  alpha : float;
  beta : float;
  nodes : int;
  dt : float;
}

let make_params ?(nodes = 64) ?(dt = 0.02) ~alpha ~beta () =
  if not (alpha > 0.0) then invalid_arg "Diffusion.make_params: alpha <= 0";
  if not (beta > 0.0) then invalid_arg "Diffusion.make_params: beta <= 0";
  if nodes < 8 then invalid_arg "Diffusion.make_params: nodes < 8";
  if not (dt > 0.0) then invalid_arg "Diffusion.make_params: dt <= 0";
  { alpha; beta; nodes; dt }

let default_params =
  make_params ~alpha:40375.0 ~beta:Rakhmatov.default_beta ()

(* Work arrays for the Crank–Nicolson sweeps, sized once per
   integration context so the stepping loop allocates nothing. *)
type scratch = {
  v : float array;      (* explicit-half right-hand side *)
  diag : float array;
  lower : float array;
  upper : float array;
  cw : float array;     (* Thomas forward-sweep scratch *)
  dw : float array;
  out : float array;    (* solution before blitting back into u *)
}

let make_scratch n =
  { v = Array.make n 0.0;
    diag = Array.make n 0.0;
    lower = Array.make (n - 1) 0.0;
    upper = Array.make (n - 1) 0.0;
    cw = Array.make (Stdlib.max 1 (n - 1)) 0.0;
    dw = Array.make n 0.0;
    out = Array.make n 0.0 }

(* One Crank-Nicolson step of du/dt = D u_xx with flux I at x = 0 and a
   sealed wall at x = 1, over time step [dt].  [u] is updated in
   place; all intermediates live in [sc]. *)
let cn_step ~sc ~dee ~dx ~dt ~current u =
  let n = Array.length u in
  let r = dee /. (dx *. dx) in
  let half = 0.5 *. dt in
  (* explicit half: v = (I + dt/2 A) u + dt * s *)
  let v = sc.v in
  v.(0) <-
    u.(0) +. (half *. ((2.0 *. r *. u.(1)) -. (2.0 *. r *. u.(0))))
    -. (dt *. 2.0 *. current /. dx);
  for i = 1 to n - 2 do
    v.(i) <-
      u.(i)
      +. (half *. r *. (u.(i - 1) -. (2.0 *. u.(i)) +. u.(i + 1)))
  done;
  v.(n - 1) <-
    u.(n - 1)
    +. (half *. ((2.0 *. r *. u.(n - 2)) -. (2.0 *. r *. u.(n - 1))));
  (* implicit half: (I - dt/2 A) u' = v *)
  Array.fill sc.diag 0 n (1.0 +. (dt *. r));
  Array.fill sc.lower 0 (n - 1) (-.half *. r);
  Array.fill sc.upper 0 (n - 1) (-.half *. r);
  sc.upper.(0) <- -.dt *. r;
  sc.lower.(n - 2) <- -.dt *. r;
  Tridiag.solve_into ~lower:sc.lower ~diag:sc.diag ~upper:sc.upper ~rhs:v
    ~cw:sc.cw ~dw:sc.dw ~out:sc.out;
  Array.blit sc.out 0 u 0 n

(* Advance [u] across a span of constant current, splitting it into
   steps no longer than params.dt. *)
let advance ~params ~sc ~dee ~dx ~current u span =
  if span > 0.0 then begin
    let steps = Stdlib.max 1 (int_of_float (Float.ceil (span /. params.dt))) in
    let dt = span /. float_of_int steps in
    for _ = 1 to steps do
      cn_step ~sc ~dee ~dx ~dt ~current u
    done
  end

let surface ~params profile ~at =
  if at < 0.0 then invalid_arg "Diffusion: negative time";
  let n = params.nodes in
  let dx = 1.0 /. float_of_int (n - 1) in
  let dee = params.beta *. params.beta /. (Float.pi *. Float.pi) in
  let sc = make_scratch n in
  let u = Array.make n params.alpha in
  let clock = ref 0.0 in
  let run_to t ~current =
    let t = Float.min t at in
    if t > !clock then begin
      advance ~params ~sc ~dee ~dx ~current u (t -. !clock);
      clock := t
    end
  in
  List.iter
    (fun (iv : Profile.interval) ->
      run_to iv.Profile.start ~current:0.0;
      run_to (iv.Profile.start +. iv.Profile.duration) ~current:iv.Profile.current)
    (Profile.intervals profile);
  run_to at ~current:0.0;
  u.(0)

let surface_density ?(params = default_params) profile ~at =
  surface ~params profile ~at

let sigma ?(params = default_params) profile ~at =
  params.alpha -. surface ~params profile ~at

(* Checkpointable integration for the delta evaluator: the PDE state is
   the full charge-density grid, a flat float vector {!Delta} can
   snapshot and restore with [Array.blit].  [advance] splits every
   interval independently of absolute time, so restoring a checkpoint
   and re-integrating the suffix is bit-identical to integrating the
   whole profile from scratch. *)
let stepper params =
  let n = params.nodes in
  let dx = 1.0 /. float_of_int (n - 1) in
  let dee = params.beta *. params.beta /. (Float.pi *. Float.pi) in
  { Model.state_dim = n;
    fresh =
      (fun () ->
        let sc = make_scratch n in
        { Model.start = (fun u -> Array.fill u 0 n params.alpha);
          advance =
            (fun u ~current ~duration ->
              advance ~params ~sc ~dee ~dx ~current u duration);
          observe = (fun u -> params.alpha -. u.(0)) }) }

let model ?(params = default_params) () =
  { Model.name = "diffusion-pde"; sigma = (fun p ~at -> sigma ~params p ~at);
    incremental = None;
    stepper = Some (stepper params);
    batch = None;
    (* no finite channel set: sigma is the solution of a PDE, so
       Periodic advances a carried stepper state instead *)
    decay = None }
