open Batsched_numeric

type params = {
  alpha : float;
  beta : float;
  nodes : int;
  dt : float;
}

let make_params ?(nodes = 64) ?(dt = 0.02) ~alpha ~beta () =
  if not (alpha > 0.0) then invalid_arg "Diffusion.make_params: alpha <= 0";
  if not (beta > 0.0) then invalid_arg "Diffusion.make_params: beta <= 0";
  if nodes < 8 then invalid_arg "Diffusion.make_params: nodes < 8";
  if not (dt > 0.0) then invalid_arg "Diffusion.make_params: dt <= 0";
  { alpha; beta; nodes; dt }

let default_params =
  make_params ~alpha:40375.0 ~beta:Rakhmatov.default_beta ()

(* One Crank-Nicolson step of du/dt = D u_xx with flux I at x = 0 and a
   sealed wall at x = 1, over time step [dt].  [u] is updated in
   place. *)
let cn_step ~dee ~dx ~dt ~current u =
  let n = Array.length u in
  let r = dee /. (dx *. dx) in
  let half = 0.5 *. dt in
  (* explicit half: v = (I + dt/2 A) u + dt * s *)
  let v = Array.make n 0.0 in
  v.(0) <-
    u.(0) +. (half *. ((2.0 *. r *. u.(1)) -. (2.0 *. r *. u.(0))))
    -. (dt *. 2.0 *. current /. dx);
  for i = 1 to n - 2 do
    v.(i) <-
      u.(i)
      +. (half *. r *. (u.(i - 1) -. (2.0 *. u.(i)) +. u.(i + 1)))
  done;
  v.(n - 1) <-
    u.(n - 1)
    +. (half *. ((2.0 *. r *. u.(n - 2)) -. (2.0 *. r *. u.(n - 1))));
  (* implicit half: (I - dt/2 A) u' = v *)
  let diag = Array.make n (1.0 +. (dt *. r)) in
  let lower = Array.make (n - 1) (-.half *. r) in
  let upper = Array.make (n - 1) (-.half *. r) in
  upper.(0) <- -.dt *. r;
  lower.(n - 2) <- -.dt *. r;
  let u' = Tridiag.solve ~lower ~diag ~upper ~rhs:v in
  Array.blit u' 0 u 0 n

(* Advance [u] across a span of constant current, splitting it into
   steps no longer than params.dt. *)
let advance ~params ~dee ~dx ~current u span =
  if span > 0.0 then begin
    let steps = Stdlib.max 1 (int_of_float (Float.ceil (span /. params.dt))) in
    let dt = span /. float_of_int steps in
    for _ = 1 to steps do
      cn_step ~dee ~dx ~dt ~current u
    done
  end

let surface ~params profile ~at =
  if at < 0.0 then invalid_arg "Diffusion: negative time";
  let n = params.nodes in
  let dx = 1.0 /. float_of_int (n - 1) in
  let dee = params.beta *. params.beta /. (Float.pi *. Float.pi) in
  let u = Array.make n params.alpha in
  let clock = ref 0.0 in
  let run_to t ~current =
    let t = Float.min t at in
    if t > !clock then begin
      advance ~params ~dee ~dx ~current u (t -. !clock);
      clock := t
    end
  in
  List.iter
    (fun (iv : Profile.interval) ->
      run_to iv.Profile.start ~current:0.0;
      run_to (iv.Profile.start +. iv.Profile.duration) ~current:iv.Profile.current)
    (Profile.intervals profile);
  run_to at ~current:0.0;
  u.(0)

let surface_density ?(params = default_params) profile ~at =
  surface ~params profile ~at

let sigma ?(params = default_params) profile ~at =
  params.alpha -. surface ~params profile ~at

let model ?params () =
  { Model.name = "diffusion-pde"; sigma = (fun p ~at -> sigma ?params p ~at);
    incremental = None }
