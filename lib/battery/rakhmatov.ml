open Batsched_numeric

let default_beta = 0.273

(* Reference implementation: truncated profile copy, term-by-term
   kernel.  Kept verbatim as the oracle the property tests compare the
   fast path against. *)
let sigma_reference ?(terms = Series.default_terms) ?(beta = default_beta) p
    ~at =
  if at < 0.0 then invalid_arg "Rakhmatov.sigma: negative time";
  let clipped = Profile.truncate p ~at in
  let contribution (iv : Profile.interval) =
    let a = at -. iv.start -. iv.duration in
    let b = at -. iv.start in
    (* truncate guarantees a >= 0 up to float noise *)
    let a = Float.max 0.0 a in
    iv.current *. (iv.duration +. Series.kernel_direct ~terms ~beta a b)
  in
  Kahan.sum_list (List.map contribution (Profile.intervals clipped))

(* Fast path: the truncation is evaluated lazily during the interval
   fold (no profile copy), the kernel comes from the memoized
   [Series.exp_sum_cached] tails, and whole per-interval contributions
   are memoized in {e suffix-time coordinates}: the RV contribution of
   an interval depends only on its current [I], its duration [D] and the
   time [tail] between its end and the observation instant — not on
   where in absolute time it sits.  Keying the memo on
   [(beta, terms, I, D, tail)] instead of the former
   [(start, duration, current, at)] therefore lets candidate schedules
   of {e different total length} share entries: a local-search move that
   shifts the makespan leaves every suffix-aligned interval's key — and
   cached value — intact, where the old absolute-time key missed on all
   of them.  The memo is a domain-local [Fcache]: the five-float key is
   hashed on its raw words (no tuple allocation, no polymorphic hashing
   per lookup) and entries expire half a table at a time. *)
let contribution_cache : Fcache.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Fcache.create ~label:"rv-contrib" ~arity:5 ())

let contribution ~terms ~beta ~current ~duration ~tail =
  let tbl = Domain.DLS.get contribution_cache in
  let terms_f = float_of_int terms in
  let probe = Probe.local () in
  let v = Fcache.find5 tbl beta terms_f current duration tail in
  if Float.is_nan v then begin
    probe.Probe.contrib_misses <- probe.Probe.contrib_misses + 1;
    let v =
      current *. (duration +. Series.kernel ~terms ~beta tail (tail +. duration))
    in
    Fcache.add5 tbl beta terms_f current duration tail ~value:v;
    v
  end
  else begin
    probe.Probe.contrib_hits <- probe.Probe.contrib_hits + 1;
    v
  end

let sigma ?(terms = Series.default_terms) ?(beta = default_beta) p ~at =
  if at < 0.0 then invalid_arg "Rakhmatov.sigma: negative time";
  let probe = Probe.local () in
  probe.Probe.sigma_evals <- probe.Probe.sigma_evals + 1;
  Kahan.sum
    (Profile.fold_until p ~at ~init:Kahan.zero
       ~f:(fun acc ~start ~duration ~current ->
         let tail = Float.max 0.0 (at -. start -. duration) in
         Kahan.add acc (contribution ~terms ~beta ~current ~duration ~tail)))

(* The suffix-time decomposition packaged for the delta evaluator: at
   the makespan of a gapless profile, [tail] in the cache key above is
   exactly the sum of durations after the interval. *)
let incremental ~terms ~beta =
  { Model.term =
      (fun ~current ~duration ~tail ->
        contribution ~terms ~beta ~current ~duration ~tail);
    tail_sensitive = true }

(* Population kernel.  Per candidate, the RV sigma at the makespan is
     sum_k I_k (D_k + F(tail_k) - F(tail_k + D_k))
   over the truncated series F(t) = 2 sum_m e^{-beta^2 m^2 t}/(beta^2 m^2).
   The suffix points telescope: with tails built by plain backward adds,
   [tail_k +. D_k] is bit-equal to [tail_{k-1}], so a backward sweep
   carries F at the shared endpoint and pays exactly one fresh F
   evaluation per non-empty interval (n+1 total).  Each F evaluation
   costs a single [exp]: with x = e^{-beta^2 t}, the squares x^{m^2}
   follow the power recurrence x^{(m+1)^2} = x^{m^2} * x^{2m+1},
   x^{2m+3} = x^{2m+1} * x^2, against the [terms] exps the direct form
   pays.  The 2/(beta^2 m^2) coefficients are precomputed; loop carries
   live in a flat scratch array so the sweep allocates nothing per
   candidate. *)
let batch ~terms ~beta =
  let b2 = beta *. beta in
  let inv =
    Array.init terms (fun i ->
        let m = float_of_int (i + 1) in
        2.0 /. (b2 *. m *. m))
  in
  { Model.batch_run =
      (fun ~n ~currents ~durations ~tails ~sigmas ~lo ~hi ->
        let acc = Kahan.Acc.create () in
        (* scratch: 0 = F at the carried suffix point, 1 = running
           series sum, 2 = x^{m^2}, 3 = x^{2m+1} *)
        let sc = Array.make 4 0.0 in
        for p = lo to hi - 1 do
          Kahan.Acc.reset acc;
          let base = p * n in
          if n > 0 then begin
            (* F at the innermost suffix point (the last interval's
               tail; 0 when observed at the makespan). *)
            let x = exp (-.b2 *. tails.(base + n - 1)) in
            let xsq = x *. x in
            sc.(1) <- 0.0;
            sc.(2) <- x;
            sc.(3) <- xsq *. x;
            for m = 0 to terms - 1 do
              sc.(1) <- sc.(1) +. (inv.(m) *. sc.(2));
              sc.(2) <- sc.(2) *. sc.(3);
              sc.(3) <- sc.(3) *. xsq
            done;
            sc.(0) <- sc.(1);
            for k = n - 1 downto 0 do
              let i = currents.(base + k) and d = durations.(base + k) in
              if d <> 0.0 then begin
                (* F at the interval's start point tail_k + D_k, which
                   is the carried point of the next (earlier) step. *)
                let x = exp (-.b2 *. (tails.(base + k) +. d)) in
                let xsq = x *. x in
                sc.(1) <- 0.0;
                sc.(2) <- x;
                sc.(3) <- xsq *. x;
                for m = 0 to terms - 1 do
                  sc.(1) <- sc.(1) +. (inv.(m) *. sc.(2));
                  sc.(2) <- sc.(2) *. sc.(3);
                  sc.(3) <- sc.(3) *. xsq
                done;
                Kahan.Acc.add acc
                  (i *. (d +. Float.max 0.0 (sc.(0) -. sc.(1))));
                sc.(0) <- sc.(1)
              end
              (* d = 0: the endpoints coincide, the term is exactly 0
                 and the carried point is unchanged. *)
            done
          end;
          sigmas.(p) <- Kahan.Acc.sum acc
        done) }

(* Channel view of the same series: the contribution
     I (D + F(tail) - F(tail + D))
   with F(t) = sum_m 2 e^{-lambda_m t} / lambda_m, lambda_m = beta^2 m^2,
   regroups as
     I D + sum_m (2 / lambda_m) I (1 - e^{-lambda_m D}) e^{-lambda_m tail}
   — one decay channel per truncated series term, amplitudes depending
   on (I, D) only.  Exactly the structure {!Periodic} telescopes across
   repeated cycles. *)
let decay ~terms ~beta =
  let b2 = beta *. beta in
  let rates =
    Array.init terms (fun i ->
        let m = float_of_int (i + 1) in
        b2 *. m *. m)
  in
  { Model.rates;
    weights =
      (fun ~current ~duration buf ->
        for t = 0 to terms - 1 do
          buf.(t) <-
            2.0 /. rates.(t) *. current *. (1.0 -. exp (-.rates.(t) *. duration))
        done);
    charge = (fun ~current ~duration -> current *. duration) }

let model ?(terms = Series.default_terms) ?(beta = default_beta) () =
  { Model.name = "rakhmatov";
    sigma = (fun p ~at -> sigma ~terms ~beta p ~at);
    incremental = Some (incremental ~terms ~beta);
    stepper = None;
    batch = Some (batch ~terms ~beta);
    decay = Some (decay ~terms ~beta) }

let unavailable_charge ?terms ?beta p ~at =
  sigma ?terms ?beta p ~at -. Profile.total_charge (Profile.truncate p ~at)
