open Batsched_numeric

let default_beta = 0.273

(* Reference implementation: truncated profile copy, term-by-term
   kernel.  Kept verbatim as the oracle the property tests compare the
   fast path against. *)
let sigma_reference ?(terms = Series.default_terms) ?(beta = default_beta) p
    ~at =
  if at < 0.0 then invalid_arg "Rakhmatov.sigma: negative time";
  let clipped = Profile.truncate p ~at in
  let contribution (iv : Profile.interval) =
    let a = at -. iv.start -. iv.duration in
    let b = at -. iv.start in
    (* truncate guarantees a >= 0 up to float noise *)
    let a = Float.max 0.0 a in
    iv.current *. (iv.duration +. Series.kernel_direct ~terms ~beta a b)
  in
  Kahan.sum_list (List.map contribution (Profile.intervals clipped))

(* Fast path: the truncation is evaluated lazily during the interval
   fold (no profile copy), the kernel comes from the memoized
   [Series.exp_sum_cached] tails, and whole per-interval contributions
   are memoized on [(start, duration, current, at)] — candidate
   schedules sharing a committed prefix/suffix with an already-costed
   one pay only for the intervals that moved.  Domain-local, flushed
   wholesale at [cache_limit] entries. *)
let cache_limit = 1 lsl 16

let contribution_cache :
    ((float * int * float * float * float * float), float) Hashtbl.t
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let contribution ~terms ~beta ~start ~duration ~current ~at =
  let tbl = Domain.DLS.get contribution_cache in
  let key = (beta, terms, start, duration, current, at) in
  let probe = Probe.local () in
  match Hashtbl.find_opt tbl key with
  | Some v ->
      probe.Probe.contrib_hits <- probe.Probe.contrib_hits + 1;
      v
  | None ->
      probe.Probe.contrib_misses <- probe.Probe.contrib_misses + 1;
      let a = Float.max 0.0 (at -. start -. duration) in
      let b = at -. start in
      let v = current *. (duration +. Series.kernel ~terms ~beta a b) in
      if Hashtbl.length tbl >= cache_limit then Hashtbl.reset tbl;
      Hashtbl.add tbl key v;
      v

let sigma ?(terms = Series.default_terms) ?(beta = default_beta) p ~at =
  if at < 0.0 then invalid_arg "Rakhmatov.sigma: negative time";
  let probe = Probe.local () in
  probe.Probe.sigma_evals <- probe.Probe.sigma_evals + 1;
  Kahan.sum
    (Profile.fold_until p ~at ~init:Kahan.zero
       ~f:(fun acc ~start ~duration ~current ->
         Kahan.add acc (contribution ~terms ~beta ~start ~duration ~current ~at)))

let model ?terms ?beta () =
  { Model.name = "rakhmatov"; sigma = (fun p ~at -> sigma ?terms ?beta p ~at) }

let unavailable_charge ?terms ?beta p ~at =
  sigma ?terms ?beta p ~at -. Profile.total_charge (Profile.truncate p ~at)
