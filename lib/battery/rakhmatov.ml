open Batsched_numeric

let default_beta = 0.273

(* Reference implementation: truncated profile copy, term-by-term
   kernel.  Kept verbatim as the oracle the property tests compare the
   fast path against. *)
let sigma_reference ?(terms = Series.default_terms) ?(beta = default_beta) p
    ~at =
  if at < 0.0 then invalid_arg "Rakhmatov.sigma: negative time";
  let clipped = Profile.truncate p ~at in
  let contribution (iv : Profile.interval) =
    let a = at -. iv.start -. iv.duration in
    let b = at -. iv.start in
    (* truncate guarantees a >= 0 up to float noise *)
    let a = Float.max 0.0 a in
    iv.current *. (iv.duration +. Series.kernel_direct ~terms ~beta a b)
  in
  Kahan.sum_list (List.map contribution (Profile.intervals clipped))

(* Fast path: the truncation is evaluated lazily during the interval
   fold (no profile copy), the kernel comes from the memoized
   [Series.exp_sum_cached] tails, and whole per-interval contributions
   are memoized in {e suffix-time coordinates}: the RV contribution of
   an interval depends only on its current [I], its duration [D] and the
   time [tail] between its end and the observation instant — not on
   where in absolute time it sits.  Keying the memo on
   [(beta, terms, I, D, tail)] instead of the former
   [(start, duration, current, at)] therefore lets candidate schedules
   of {e different total length} share entries: a local-search move that
   shifts the makespan leaves every suffix-aligned interval's key — and
   cached value — intact, where the old absolute-time key missed on all
   of them.  The memo is a domain-local [Fcache]: the five-float key is
   hashed on its raw words (no tuple allocation, no polymorphic hashing
   per lookup) and entries expire half a table at a time. *)
let contribution_cache : Fcache.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Fcache.create ~label:"rv-contrib" ~arity:5 ())

let contribution ~terms ~beta ~current ~duration ~tail =
  let tbl = Domain.DLS.get contribution_cache in
  let terms_f = float_of_int terms in
  let probe = Probe.local () in
  let v = Fcache.find5 tbl beta terms_f current duration tail in
  if Float.is_nan v then begin
    probe.Probe.contrib_misses <- probe.Probe.contrib_misses + 1;
    let v =
      current *. (duration +. Series.kernel ~terms ~beta tail (tail +. duration))
    in
    Fcache.add5 tbl beta terms_f current duration tail ~value:v;
    v
  end
  else begin
    probe.Probe.contrib_hits <- probe.Probe.contrib_hits + 1;
    v
  end

let sigma ?(terms = Series.default_terms) ?(beta = default_beta) p ~at =
  if at < 0.0 then invalid_arg "Rakhmatov.sigma: negative time";
  let probe = Probe.local () in
  probe.Probe.sigma_evals <- probe.Probe.sigma_evals + 1;
  Kahan.sum
    (Profile.fold_until p ~at ~init:Kahan.zero
       ~f:(fun acc ~start ~duration ~current ->
         let tail = Float.max 0.0 (at -. start -. duration) in
         Kahan.add acc (contribution ~terms ~beta ~current ~duration ~tail)))

(* The suffix-time decomposition packaged for the delta evaluator: at
   the makespan of a gapless profile, [tail] in the cache key above is
   exactly the sum of durations after the interval. *)
let incremental ~terms ~beta =
  { Model.term =
      (fun ~current ~duration ~tail ->
        contribution ~terms ~beta ~current ~duration ~tail);
    tail_sensitive = true }

let model ?(terms = Series.default_terms) ?(beta = default_beta) () =
  { Model.name = "rakhmatov";
    sigma = (fun p ~at -> sigma ~terms ~beta p ~at);
    incremental = Some (incremental ~terms ~beta) }

let unavailable_charge ?terms ?beta p ~at =
  sigma ?terms ?beta p ~at -. Profile.total_charge (Profile.truncate p ~at)
