open Batsched_numeric

let default_beta = 0.273

(* Reference implementation: truncated profile copy, term-by-term
   kernel.  Kept verbatim as the oracle the property tests compare the
   fast path against. *)
let sigma_reference ?(terms = Series.default_terms) ?(beta = default_beta) p
    ~at =
  if at < 0.0 then invalid_arg "Rakhmatov.sigma: negative time";
  let clipped = Profile.truncate p ~at in
  let contribution (iv : Profile.interval) =
    let a = at -. iv.start -. iv.duration in
    let b = at -. iv.start in
    (* truncate guarantees a >= 0 up to float noise *)
    let a = Float.max 0.0 a in
    iv.current *. (iv.duration +. Series.kernel_direct ~terms ~beta a b)
  in
  Kahan.sum_list (List.map contribution (Profile.intervals clipped))

(* Fast path: the truncation is evaluated lazily during the interval
   fold (no profile copy), the kernel comes from the memoized
   [Series.exp_sum_cached] tails, and whole per-interval contributions
   are memoized on [(beta, terms, start, duration, current, at)] —
   candidate schedules sharing a committed prefix/suffix with an
   already-costed one pay only for the intervals that moved.  The memo
   is a domain-local [Fcache]: the six-float key is hashed on its raw
   words (no tuple allocation, no polymorphic hashing per lookup) and
   entries expire half a table at a time instead of the former
   wholesale [Hashtbl.reset]. *)
let contribution_cache : Fcache.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Fcache.create ~arity:6 ())

let contribution ~terms ~beta ~start ~duration ~current ~at =
  let tbl = Domain.DLS.get contribution_cache in
  let terms_f = float_of_int terms in
  let probe = Probe.local () in
  let v = Fcache.find6 tbl beta terms_f start duration current at in
  if Float.is_nan v then begin
    probe.Probe.contrib_misses <- probe.Probe.contrib_misses + 1;
    let a = Float.max 0.0 (at -. start -. duration) in
    let b = at -. start in
    let v = current *. (duration +. Series.kernel ~terms ~beta a b) in
    Fcache.add6 tbl beta terms_f start duration current at ~value:v;
    v
  end
  else begin
    probe.Probe.contrib_hits <- probe.Probe.contrib_hits + 1;
    v
  end

let sigma ?(terms = Series.default_terms) ?(beta = default_beta) p ~at =
  if at < 0.0 then invalid_arg "Rakhmatov.sigma: negative time";
  let probe = Probe.local () in
  probe.Probe.sigma_evals <- probe.Probe.sigma_evals + 1;
  Kahan.sum
    (Profile.fold_until p ~at ~init:Kahan.zero
       ~f:(fun acc ~start ~duration ~current ->
         Kahan.add acc (contribution ~terms ~beta ~start ~duration ~current ~at)))

let model ?terms ?beta () =
  { Model.name = "rakhmatov"; sigma = (fun p ~at -> sigma ?terms ?beta p ~at) }

let unavailable_charge ?terms ?beta p ~at =
  sigma ?terms ?beta p ~at -. Profile.total_charge (Profile.truncate p ~at)
