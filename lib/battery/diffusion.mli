(** Finite-difference reference simulation of the one-dimensional
    diffusion battery — the physical model the Rakhmatov–Vrudhula
    analytical expression (the paper's Eq. 1) is derived from.

    Electroactive species of charge-density [u(x, t)] diffuse across a
    normalized electrolyte [x in [0, 1]]:

    {[ du/dt = D d2u/dx2,   D = beta^2 / pi^2 ]}

    with the load drawn as a flux at the electrode ([x = 0]) and a
    sealed far wall ([x = 1]).  Initially [u = alpha] uniformly (in
    charge-per-unit-length units with the width normalized out).  The
    apparent charge lost is

    {[ sigma(t) = alpha - u(0, t) ]}

    which reduces to the drawn charge at rest equilibrium and reaches
    [alpha] exactly when the electrode is depleted — the same
    death/recovery semantics as the analytical model, without the
    series truncation or the interval bookkeeping.  Crank–Nicolson in
    time, second-order flux boundaries, tridiagonal solves.

    This module exists to {e validate} {!Rakhmatov} against first
    principles (see the "validation" experiment); it is orders of
    magnitude slower and should not drive the scheduler. *)

type params = {
  alpha : float;      (** capacity parameter, mA*min; > 0 *)
  beta : float;       (** diffusion parameter, min^(-1/2); > 0 *)
  nodes : int;        (** spatial grid points, >= 8 *)
  dt : float;         (** time step, minutes; > 0 *)
}

val default_params : params
(** Itsy-matched: alpha 40375, beta 0.273, 64 nodes, dt = 0.02 min. *)

val make_params :
  ?nodes:int -> ?dt:float -> alpha:float -> beta:float -> unit -> params
(** @raise Invalid_argument outside the ranges above. *)

val sigma : ?params:params -> Profile.t -> at:float -> float
(** Simulate the PDE from time 0 through [at] under the profile's load
    and return [alpha - u(0, at)].
    @raise Invalid_argument on negative [at]. *)

val surface_density : ?params:params -> Profile.t -> at:float -> float
(** [u(0, at)] itself (the battery dies when it reaches 0). *)

val stepper : params -> Model.stepper
(** Checkpointable integration context: state is the charge-density
    grid ([nodes] floats).  Because each interval is integrated
    independently of absolute time, restoring a snapshot and
    re-integrating a suffix is bit-identical to a from-scratch
    integration — which is what makes the delta evaluator's
    checkpointed path exact. *)

val model : ?params:params -> unit -> Model.t
(** Packaged as a {!Model.t} named ["diffusion-pde"], with the
    checkpointed {!stepper} (no per-interval decomposition exists for
    the PDE). *)
