(* Benchmark harness.

   Two halves:

   1. Reproductions — regenerate every table and figure of the paper
      (the rows/series the paper reports), via the experiment registry.
      One section per artifact: table1..table4, fig3..fig5, plus the
      supporting curves/ablation/baselines/scaling experiments.

   2. Timing — Bechamel micro/meso benchmarks, one scenario per paper
      artifact (how long regenerating each costs) plus kernel benches
      (RV sigma evaluation, window sweep, DP knapsack) across sizes,
      scaling instances up to n64, and a parallel-vs-sequential
      multistart pair.

   Run everything:        dune exec bench/main.exe
   Reproductions only:    dune exec bench/main.exe -- tables
   Timing only:           dune exec bench/main.exe -- timing
   Timing + JSON dump:    dune exec bench/main.exe -- timing --json BENCH_2026-08-06.json
   One-shot sanity pass:  dune exec bench/main.exe -- --smoke   (or: dune build @bench-smoke)
   One experiment:        dune exec bench/main.exe -- table3
   Compare snapshots:     dune exec bench/main.exe -- --compare OLD.json NEW.json
                          (--normalize divides out overall machine speed;
                           exits 1 on a confident regression)

   Telemetry sinks: --metrics FILE writes an OpenMetrics exposition,
   --ledger DIR records a run manifest (wall time, counters, git rev)
   to the run registry; BATSCHED_METRICS / BATSCHED_LEDGER are the
   env equivalents. *)

open Bechamel
open Toolkit

(* Observability: --stats prints a counter/timing report, --trace FILE
   dumps a Chrome trace.  Reproduction and smoke scenarios run under a
   span each, so the trace shows where a full bench run spends time. *)
let obs = ref Batsched_obs.Sink.noop

(* --- half 1: reproductions --- *)

let run_reproductions names =
  let selected =
    match names with
    | [] -> Batsched_experiments.Registry.all
    | _ ->
        List.filter_map Batsched_experiments.Registry.find names
  in
  List.iter
    (fun (e : Batsched_experiments.Registry.experiment) ->
      let out = Batsched_obs.Sink.with_span !obs e.name e.run in
      Printf.printf "=== %s: %s ===\n%s\n%!" e.name e.title out)
    selected

(* --- half 2: timing scenarios ---

   Each scenario is a (name, thunk) pair; the same list drives the
   Bechamel estimation run, the --smoke single-shot sanity pass, and
   the --json dump. *)

let model = Batsched_battery.Rakhmatov.model ()

let g3_profile =
  let g = Batsched_taskgraph.Instances.g3 in
  let cfg = Batsched.Config.make ~deadline:230.0 () in
  let r = Batsched.Iterate.run cfg g in
  Batsched_sched.Schedule.to_profile g r.Batsched.Iterate.schedule

let fork_join n_widths =
  let rng = Batsched_numeric.Rng.create 42 in
  Batsched_taskgraph.Generators.fork_join ~rng
    ~spec:Batsched_taskgraph.Generators.default_spec ~widths:n_widths

let scenario_kernels =
  [ ("rv-sigma/g3-schedule",
     fun () -> ignore (Batsched_battery.Model.sigma_end model g3_profile));
    ("rv-sigma-reference/g3-schedule",
     (let at = Batsched_battery.Profile.length g3_profile in
      fun () ->
        ignore (Batsched_battery.Rakhmatov.sigma_reference g3_profile ~at)));
    ("kibam-sigma/g3-schedule",
     fun () ->
       ignore
         (Batsched_battery.Model.sigma_end
            (Batsched_battery.Kibam.model ())
            g3_profile));
    (let params =
       Batsched_battery.Diffusion.make_params ~nodes:32 ~dt:0.1 ~alpha:40375.0
         ~beta:0.273 ()
     in
     let pulse =
       Batsched_battery.Profile.constant ~current:800.0 ~duration:20.0
     in
     ("pde-sigma/20min-pulse",
      fun () -> ignore (Batsched_battery.Diffusion.sigma ~params pulse ~at:20.0)));
    (let g = Batsched_taskgraph.Instances.g3 in
     let pes = Batsched_multiproc.Mschedule.Pe.uniform 2 in
     ("multiproc/battery-aware-2pe",
      fun () ->
        ignore
          (Batsched_multiproc.Mheuristics.battery_aware ~model g ~pes
             ~deadline:150.0)));
    ("rv-kernel/10-terms",
     fun () -> ignore (Batsched_numeric.Series.kernel ~beta:0.273 5.0 25.0));
    ("rv-kernel-direct/10-terms",
     fun () ->
       ignore (Batsched_numeric.Series.kernel_direct ~beta:0.273 5.0 25.0));
    (let g = Batsched_taskgraph.Instances.g3 in
     ("dp-knapsack/g3-d230",
      fun () ->
        ignore
          (Batsched_baselines.Dp_energy.select_design_points g ~deadline:230.0)));
    (let g = Batsched_taskgraph.Instances.g3 in
     let cfg = Batsched.Config.make ~deadline:230.0 () in
     let seq = Batsched_sched.Priorities.sequence_dec_energy g in
     ("choose-dp/g3-window0",
      fun () ->
        ignore
          (Batsched.Choose.choose_design_points cfg g ~sequence:seq
             ~window_start:0))) ]

(* one scenario per paper artifact: the cost of regenerating it *)
let scenario_artifacts =
  [ (let g = Batsched_taskgraph.Instances.g3 in
     ("table2+3/iterate-g3",
      fun () ->
        let cfg = Batsched.Config.make ~deadline:230.0 () in
        ignore (Batsched.Iterate.run cfg g)));
    (let g = Batsched_taskgraph.Instances.g2 in
     ("table4/g2-three-deadlines",
      fun () ->
        List.iter
          (fun deadline ->
            let cfg = Batsched.Config.make ~deadline () in
            ignore (Batsched.Iterate.run cfg g);
            ignore (Batsched_baselines.Dp_energy.run ~model g ~deadline))
          Batsched_taskgraph.Instances.g2_deadlines));
    ("fig5/g2-dot",
     fun () ->
       ignore
         (Batsched_taskgraph.Textio.to_dot Batsched_taskgraph.Instances.g2));
    ("curves/rate-capacity",
     fun () ->
       ignore
         (Batsched_battery.Curves.rate_capacity
            ~cell:Batsched_battery.Cell.itsy
            ~currents:[ 100.0; 400.0; 1600.0 ]));
    ("table1/instance-echo",
     fun () ->
       ignore
         (Batsched_taskgraph.Textio.to_string Batsched_taskgraph.Instances.g3));
    ("fig3/window-masks",
     fun () ->
       List.iter
         (fun ws ->
           ignore
             (Batsched.Window.mask Batsched_taskgraph.Instances.g2
                ~window_start:ws))
         [ 0; 1; 2 ]);
    (let g =
       let t id =
         Batsched_taskgraph.Task.of_pairs ~id
           ~name:(Printf.sprintf "T%d" (id + 1))
           [ (800.0, 2.0); (400.0, 4.0); (200.0, 6.0); (100.0, 8.0) ]
       in
       Batsched_taskgraph.Graph.make ~label:"fig4" ~edges:[] (List.init 5 t)
     in
     let a = Batsched_sched.Assignment.of_list g [ 1; 3; 1; 0; 3 ] in
     ("fig4/dpf-worked-example",
      fun () ->
        ignore
          (Batsched_sched.Metrics.dpf_static g a ~free:[ 0; 1 ]
             ~window_start:0)));
    (let g = Batsched_taskgraph.Instances.g2 in
     ("ablation/one-knockout-g2",
      fun () ->
        let weights =
          { Batsched.Config.paper_weights with Batsched.Config.dpf = 0.0 }
        in
        let cfg = Batsched.Config.make ~weights ~deadline:75.0 () in
        ignore (Batsched.Iterate.run cfg g)));
    (let g = Batsched_taskgraph.Instances.g3 in
     ("mechanisms/full-window-only-g3",
      fun () ->
        let cfg =
          Batsched.Config.make ~full_window_only:true ~deadline:230.0 ()
        in
        ignore (Batsched.Iterate.run cfg g)));
    (let g = Batsched_taskgraph.Instances.g3 in
     ("beta/one-point",
      fun () ->
        let model = Batsched_battery.Rakhmatov.model ~beta:0.7 () in
        let cfg = Batsched.Config.make ~model ~deadline:230.0 () in
        ignore (Batsched.Iterate.run cfg g)));
    (let cycle = Batsched_battery.Profile.constant ~current:800.0 ~duration:20.0 in
     ("endurance/cycles-to-death",
      fun () ->
        ignore
          (Batsched_battery.Periodic.cycles_to_death ~max_cycles:20 ~model
             ~alpha:65000.0 ~period:40.0 cycle))) ]

let scenario_scaling =
  let iterate (label, widths) =
    let g = fork_join widths in
    let deadline =
      Batsched_taskgraph.Generators.feasible_deadline g ~slack:0.6
    in
    let cfg = Batsched.Config.make ~deadline () in
    ("scaling/iterate-" ^ label, fun () -> ignore (Batsched.Iterate.run cfg g))
  in
  let multistart (label, pool) =
    (* the n16 instance, 8 starts: big enough for the fan-out to bite,
       small enough for a 0.5 s Bechamel quota *)
    let g = fork_join [ 5; 4; 4 ] in
    let deadline =
      Batsched_taskgraph.Generators.feasible_deadline g ~slack:0.6
    in
    let cfg = Batsched.Config.make ~pool ~deadline () in
    ( "scaling/multistart-n16-" ^ label,
      fun () ->
        let rng = Batsched_numeric.Rng.create 7 in
        ignore (Batsched.Iterate.run_multistart ~rng ~starts:8 cfg g) )
  in
  List.map iterate
    [ ("n8", [ 3; 2 ]);
      ("n16", [ 5; 4; 4 ]);
      ("n26", [ 6; 6; 6; 4 ]);
      ("n64", [ 15; 15; 15; 14 ]) ]
  @ List.map multistart
      [ ("sequential", Batsched_numeric.Pool.sequential);
        ("parallel", Batsched_numeric.Pool.create_recommended ()) ]
  @ [ (* screened multistart: 16 random seeds costed in one
         structure-of-arrays [Sigma_batch] sweep, only the best 3 (plus
         the deterministic seed) run the full window-sweep loop *)
      (let g = fork_join [ 5; 4; 4 ] in
       let deadline =
         Batsched_taskgraph.Generators.feasible_deadline g ~slack:0.6
       in
       let cfg = Batsched.Config.make ~deadline () in
       ("multistart-batch/n16-screen16",
        fun () ->
          let rng = Batsched_numeric.Rng.create 7 in
          ignore
            (Batsched.Iterate.run_multistart ~rng ~starts:4 ~screen:16 cfg g)))
    ]

(* The incremental-vs-reference choose pair on one n64 instance: same
   graph, same sequence, same window, only the CalculateDPF evaluation
   strategy differs — the ratio of the two rows is the speedup the
   incremental path buys, machine-independently.  The annealing pair
   plays the same role for the delta schedule evaluator: the same short
   walk (same params, same seed, same RNG stream) costed through
   [Eval]'s O(1) moves versus the full schedule + sigma path — their
   ratio is the delta-evaluation speedup on a workload that, unlike
   [Iterate], revisits near-identical profiles thousands of times. *)
let scenario_choose =
  let g = fork_join [ 15; 15; 15; 14 ] in
  let deadline =
    Batsched_taskgraph.Generators.feasible_deadline g ~slack:0.6
  in
  let cfg = Batsched.Config.make ~deadline () in
  let seq = Batsched_sched.Priorities.sequence_dec_energy g in
  let anneal_params =
    { Batsched_baselines.Annealing.initial_temperature = 2000.0;
      cooling = 0.8;
      steps_per_temperature = 10;
      temperature_floor = 500.0 }
  in
  (* same walk, same seed, same RNG stream; only the candidate-costing
     path differs — the per-model delta/reference ratio is the speedup
     the matching evaluation strategy buys (KiBaM: closed-form
     suffix-coordinate terms; diffusion: checkpointed PDE restarts) *)
  let anneal m eval () =
    let rng = Batsched_numeric.Rng.create 11 in
    ignore
      (Batsched_baselines.Annealing.run ~params:anneal_params ~eval ~rng
         ~model:m g ~deadline)
  in
  let kibam = Batsched_battery.Kibam.model () in
  let diffusion =
    (* coarse grid: the pair measures the checkpointing strategy, not
       the grid resolution, and the default 64-node grid is far too
       slow for a 0.5 s Bechamel quota *)
    let params =
      Batsched_battery.Diffusion.make_params ~nodes:16 ~dt:0.5 ~alpha:40375.0
        ~beta:0.273 ()
    in
    Batsched_battery.Diffusion.model ~params ()
  in
  [ ("choose-n64/window0",
     fun () ->
       ignore
         (Batsched.Choose.choose_design_points cfg g ~sequence:seq
            ~window_start:0));
    ("choose-n64-reference/window0",
     fun () ->
       ignore
         (Batsched.Choose.choose_design_points_reference cfg g ~sequence:seq
            ~window_start:0));
    ("anneal-n64-delta/short-walk", anneal model `Delta);
    ("anneal-n64-reference/short-walk", anneal model `Reference);
    ("anneal-n64-kibam-delta/short-walk", anneal kibam `Delta);
    ("anneal-n64-kibam-reference/short-walk", anneal kibam `Reference);
    ("anneal-n64-diffusion-delta/short-walk", anneal diffusion `Delta);
    ("anneal-n64-diffusion-reference/short-walk", anneal diffusion `Reference)
  ]

(* Work-stealing vs fork-join on a deliberately imbalanced multistart:
   16 short anneal trials whose budgets spread 10x, every heavy trial
   sitting at a stride-4 position — the placement that hands a strided
   fork-join split all the heavy trials on one worker.  Both rows run
   identical trials on the same 4-slot pool; [steal] goes through the
   persistent executor's chunked deques, [forkjoin] through the old
   spawn-per-call strided split kept as [Pool.map_array_strided].  The
   row ratio is the executor's win: idle-worker rebalancing plus
   amortized domain spawn (on a single-core host the spawn amortization
   is most of it).  The serve-soak row drives the whole daemon path —
   parse, admission, pool jobs, histograms — over the generator mix the
   CI smoke fixture uses. *)
let scenario_serve =
  let pool4 = Batsched_numeric.Pool.create 4 in
  let g8 = fork_join [ 3; 2 ] in
  let deadline =
    Batsched_taskgraph.Generators.feasible_deadline g8 ~slack:0.6
  in
  let params steps =
    { Batsched_baselines.Annealing.initial_temperature = 8.0;
      cooling = 0.5;
      steps_per_temperature = steps;
      temperature_floor = 1.0 }
  in
  let budgets = Array.init 16 (fun i -> if i mod 4 = 0 then 30 else 3) in
  let trial i =
    let rng = Batsched_numeric.Rng.create (100 + i) in
    ignore
      (Batsched_baselines.Annealing.run ~params:(params budgets.(i)) ~rng
         ~model g8 ~deadline)
  in
  let ixs = Array.init 16 (fun i -> i) in
  [ ("multistart-imbalanced/steal",
     fun () -> ignore (Batsched_numeric.Pool.map_array pool4 trial ixs));
    ("multistart-imbalanced/forkjoin",
     fun () ->
       ignore (Batsched_numeric.Pool.map_array_strided pool4 trial ixs));
    ("serve-soak/mixed-200",
     fun () -> ignore (Batsched_serve.Soak.run ~pool:pool4 ~n:200 ())) ]

(* Periodic endurance, fast vs oracle: the same mission costed through
   the O(cycles) closed-form kernel and the from-scratch quadratic
   replay.  Both rows censor at the cycle cap (alpha far above reach),
   so the cap IS the workload; the fast/reference ratio at 60 vs 240
   cycles shows the superlinear win (the oracle's cost grows with the
   square of the cycle count, the kernel's linearly).  The fleet row is
   the whole Monte Carlo engine — sampler, batch kernel, survival
   accumulators — over the built-in 100k-device population, the
   devices/sec figure EXPERIMENTS.md quotes. *)
let scenario_fleet =
  let mission =
    Batsched_battery.Profile.constant ~current:800.0 ~duration:20.0
  in
  let fast cycles () =
    ignore
      (Batsched_battery.Periodic.cycles_to_death ~max_cycles:cycles ~model
         ~alpha:1e9 ~period:40.0 mission)
  in
  let reference cycles () =
    ignore
      (Batsched_battery.Periodic.cycles_to_death_reference ~max_cycles:cycles
         ~model ~alpha:1e9 ~period:40.0 mission)
  in
  let pool4 = Batsched_numeric.Pool.create 4 in
  [ ("periodic-fast/rv-60", fast 60);
    ("periodic-reference/rv-60", reference 60);
    ("periodic-fast/rv-240", fast 240);
    ("periodic-reference/rv-240", reference 240);
    ("fleet-100k/default-pool4",
     fun () ->
       ignore
         (Batsched_fleet.Engine.run ~pool:pool4
            ~spec:Batsched_fleet.Spec.default ~devices:100_000 ~seed:42 ()))
  ]

let scenarios =
  scenario_kernels @ scenario_artifacts @ scenario_scaling @ scenario_choose
  @ scenario_serve @ scenario_fleet

(* --- smoke: run every scenario exactly once --- *)

(* Delta-vs-oracle cross-check, smoke only (it is a verification, not a
   benchmark): drive a random precedence-respecting move trace through
   the incremental evaluator on the published instances and a generated
   one, and compare its committed sigma/finish against the full
   [Schedule] path at checkpoints.  A relative disagreement beyond 1e-9
   aborts the smoke run — and with it @bench-smoke, @check and CI. *)
let delta_cross_check () =
  let check_instance ~model label g ~deadline =
    let rng = Batsched_numeric.Rng.create 123 in
    let sol = Batsched_baselines.Chowdhury.run ~model g ~deadline in
    let ev =
      Batsched_sched.Eval.make ~model g sol.Batsched_baselines.Solution.schedule
    in
    let n = Batsched_taskgraph.Graph.num_tasks g in
    let m = Batsched_taskgraph.Graph.num_points g in
    let check step =
      let sched = Batsched_sched.Eval.to_schedule ev in
      let oracle_sigma = Batsched_sched.Schedule.battery_cost ~model g sched in
      let oracle_finish = Batsched_sched.Schedule.finish_time g sched in
      let agree got want = Float.abs (got -. want) <= 1e-9 *. (1.0 +. Float.abs want) in
      if not (agree (Batsched_sched.Eval.sigma ev) oracle_sigma) then
        failwith
          (Printf.sprintf
             "delta cross-check: sigma diverged on %s after %d moves: \
              delta=%.17g oracle=%.17g"
             label step (Batsched_sched.Eval.sigma ev) oracle_sigma);
      if not (agree (Batsched_sched.Eval.finish ev) oracle_finish) then
        failwith
          (Printf.sprintf
             "delta cross-check: finish diverged on %s after %d moves: \
              delta=%.17g oracle=%.17g"
             label step (Batsched_sched.Eval.finish ev) oracle_finish)
    in
    check 0;
    for step = 1 to 200 do
      (if Batsched_numeric.Rng.bool rng && n >= 2 then begin
         let k = Batsched_numeric.Rng.int rng (n - 1) in
         if Batsched_sched.Eval.swap_allowed ev k then begin
           ignore (Batsched_sched.Eval.try_swap ev k);
           Batsched_sched.Eval.commit ev
         end
       end
       else begin
         let i = Batsched_numeric.Rng.int rng n in
         let j = Batsched_numeric.Rng.int rng m in
         if j <> Batsched_sched.Eval.column ev i then begin
           ignore (Batsched_sched.Eval.try_repoint ev ~task:i ~col:j);
           Batsched_sched.Eval.commit ev
         end
       end);
      if step mod 25 = 0 then check step
    done;
    Printf.printf "smoke %-40s ok\n%!" ("delta-cross-check/" ^ label)
  in
  check_instance ~model "g2" Batsched_taskgraph.Instances.g2
    ~deadline:(List.hd Batsched_taskgraph.Instances.g2_deadlines);
  check_instance ~model "g3" Batsched_taskgraph.Instances.g3 ~deadline:230.0;
  let g = fork_join [ 5; 4; 4 ] in
  let n16_deadline =
    Batsched_taskgraph.Generators.feasible_deadline g ~slack:0.6
  in
  check_instance ~model "fork-join-n16" g ~deadline:n16_deadline;
  (* the other delta strategies: KiBaM goes through the closed-form
     suffix-coordinate incremental terms, diffusion through the
     checkpointed PDE stepper — same oracle, same tolerance *)
  let kibam = Batsched_battery.Kibam.model () in
  check_instance ~model:kibam "kibam-g2" Batsched_taskgraph.Instances.g2
    ~deadline:(List.hd Batsched_taskgraph.Instances.g2_deadlines);
  check_instance ~model:kibam "kibam-fork-join-n16" g ~deadline:n16_deadline;
  let diffusion =
    let params =
      Batsched_battery.Diffusion.make_params ~nodes:8 ~dt:1.0 ~alpha:40375.0
        ~beta:0.273 ()
    in
    Batsched_battery.Diffusion.model ~params ()
  in
  check_instance ~model:diffusion "diffusion-g2" Batsched_taskgraph.Instances.g2
    ~deadline:(List.hd Batsched_taskgraph.Instances.g2_deadlines)

(* Sigma_batch-vs-sequential cross-check, smoke only: one random
   candidate block evaluated through the structure-of-arrays sweep must
   match per-row [Model.sigma_end] on the materialized profiles — for
   every model (kernel or fallback path) and at pool sizes 1 and 4. *)
let sigma_batch_cross_check () =
  let pop = 4 and n = 12 in
  let rng = Batsched_numeric.Rng.create 2024 in
  let currents =
    Array.init (pop * n) (fun _ ->
        100.0 +. (700.0 *. Batsched_numeric.Rng.float rng 1.0))
  in
  let durations =
    Array.init (pop * n) (fun _ ->
        (* one zero-duration interval in ~5 to exercise the skip path *)
        if Batsched_numeric.Rng.int rng 5 = 0 then 0.0
        else 0.5 +. (7.5 *. Batsched_numeric.Rng.float rng 1.0))
  in
  let models =
    [ Batsched_battery.Ideal.model;
      Batsched_battery.Peukert.model ();
      Batsched_battery.Rakhmatov.model ();
      Batsched_battery.Kibam.model ();
      (let params =
         Batsched_battery.Diffusion.make_params ~nodes:8 ~dt:1.0 ~alpha:40375.0
           ~beta:0.273 ()
       in
       Batsched_battery.Diffusion.model ~params ()) ]
  in
  let pool4 = Batsched_numeric.Pool.create 4 in
  List.iter
    (fun (m : Batsched_battery.Model.t) ->
      let oracle =
        Array.init pop (fun p ->
            let profile =
              Batsched_battery.Profile.sequential_fn ~n (fun k ->
                  (currents.((p * n) + k), durations.((p * n) + k)))
            in
            Batsched_battery.Model.sigma_end m profile)
      in
      List.iter
        (fun (plabel, pool) ->
          let batch = Batsched_battery.Sigma_batch.create ~pool m in
          Batsched_battery.Sigma_batch.eval batch ~pop ~n
            ~current:(fun p k -> currents.((p * n) + k))
            ~duration:(fun p k -> durations.((p * n) + k));
          for p = 0 to pop - 1 do
            let got = Batsched_battery.Sigma_batch.sigma batch p in
            let want = oracle.(p) in
            if Float.abs (got -. want) > 1e-9 *. (1.0 +. Float.abs want) then
              failwith
                (Printf.sprintf
                   "sigma-batch cross-check: %s/%s row %d: batch=%.17g \
                    sequential=%.17g"
                   m.Batsched_battery.Model.name plabel p got want)
          done)
        [ ("pool1", Batsched_numeric.Pool.sequential); ("pool4", pool4) ];
      Printf.printf "smoke %-40s ok\n%!"
        ("sigma-batch-cross-check/" ^ m.Batsched_battery.Model.name))
    models

let run_smoke () =
  List.iter
    (fun (name, fn) ->
      Batsched_obs.Sink.with_span !obs name fn;
      Printf.printf "smoke %-40s ok\n%!" name)
    scenarios;
  delta_cross_check ();
  sigma_batch_cross_check ()

(* --- work profile: counters from one instrumented run per scenario ---

   Wall time alone cannot tell an algorithmic regression from machine
   noise; the counter snapshot records how much work each scenario did
   (sigma evaluations, cache hit rates, pool fan-out) and how much it
   allocated ([Gc] word deltas; main domain only, so parallel scenarios
   under-report worker allocations).  Counts are deterministic for a
   fixed scenario, so BENCH_*.json diffs cleanly across PRs — the
   allocation words are exact repeats too, modulo first-call cache
   warm-up. *)

type profile_row = {
  counters : Batsched_numeric.Probe.t;
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

let work_profile () =
  List.map
    (fun (name, fn) ->
      Batsched_numeric.Probe.reset ();
      (* [Gc.minor_words] reads the allocation pointer, so the minor
         delta is word-exact; [quick_stat] only refreshes the major/
         promoted totals at collection boundaries, which is fine for
         the coarser major-heap numbers *)
      let s0 = Gc.quick_stat () in
      let w0 = Gc.minor_words () in
      fn ();
      let w1 = Gc.minor_words () in
      let s1 = Gc.quick_stat () in
      ( name,
        { counters = Batsched_numeric.Probe.totals ();
          minor_words = w1 -. w0;
          major_words = s1.Gc.major_words -. s0.Gc.major_words;
          promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words } ))
    scenarios

(* --- bechamel estimation --- *)

(* One timing row.  The rerun guard (below) fills [ns_first] and
   [low_confidence] for rows whose first OLS fit was too noisy to
   trust; both land in the JSON dump so [--compare] can widen its
   threshold by the observed dispersion. *)
type timing_row = {
  tname : string;
  ns_per_run : float;
  r_square : float;
  ns_first : float option;
  low_confidence : bool;
}

let estimate_scenarios ~quota named =
  let tests =
    List.map (fun (name, fn) -> Test.make ~name (Staged.stage fn)) named
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:(Some 100) ()
  in
  (* analyze with ordinary least squares against run count *)
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let grouped = Test.make_grouped ~name:"batsched" tests in
  let results = Benchmark.all cfg instances grouped in
  let analysis = Analyze.all ols Instance.monotonic_clock results in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> e
        | _ -> Float.nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> r
        | None -> Float.nan
      in
      rows := (name, estimate, r2) :: !rows)
    analysis;
  List.sort compare !rows

(* Fit-quality guard: a row whose OLS fit explains less than half the
   variance is re-measured once with 4x the quota.  The second
   estimate wins either way; rows still under the bar are tagged
   low-confidence, so [--compare] warns instead of gating on them. *)
let r2_floor = 0.5

let rerun_guard rows =
  let scenario_of name =
    let bare =
      match String.index_opt name '/' with
      | Some i when not (List.mem_assoc name scenarios) ->
          String.sub name (i + 1) (String.length name - i - 1)
      | _ -> name
    in
    Option.map (fun fn -> (name, fn)) (List.assoc_opt bare scenarios)
  in
  List.map
    (fun (name, estimate, r2) ->
      let fresh =
        { tname = name;
          ns_per_run = estimate;
          r_square = r2;
          ns_first = None;
          low_confidence = false }
      in
      if Float.is_finite r2 && r2 >= r2_floor then fresh
      else
        match scenario_of name with
        | None -> { fresh with low_confidence = true }
        | Some named -> (
            Printf.printf "rerun %-39s (r^2 %.4f below %.1f)\n%!" name r2
              r2_floor;
            match estimate_scenarios ~quota:2.0 [ named ] with
            | [ (_, estimate', r2') ] ->
                { tname = name;
                  ns_per_run = estimate';
                  r_square = r2';
                  ns_first = Some estimate;
                  low_confidence = not (Float.is_finite r2' && r2' >= r2_floor)
                }
            | _ -> { fresh with low_confidence = true }))
    rows

let run_timing () =
  let rows = rerun_guard (estimate_scenarios ~quota:0.5 scenarios) in
  Printf.printf "%-40s %14s %8s\n" "benchmark" "ns/run" "r^2";
  List.iter
    (fun r ->
      Printf.printf "%-40s %14.1f %8.4f%s\n%!" r.tname r.ns_per_run r.r_square
        (if r.low_confidence then "  (low confidence)" else ""))
    rows;
  rows

(* --- JSON dump: one row per benchmark, for cross-PR tracking --- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.1f" x else "null"

(* Counters for a row: bechamel prefixes scenario names with the group
   ("batsched/..."), the work profile keys on the raw scenario name. *)
let counters_for profile name =
  let strip s =
    match String.index_opt s '/' with
    | Some i when List.mem_assoc s profile = false ->
        String.sub s (i + 1) (String.length s - i - 1)
    | _ -> s
  in
  List.assoc_opt (strip name) profile

let json_counters row =
  let c = row.counters in
  let fields =
    List.map
      (fun (name, get) -> Printf.sprintf "\"%s\": %d" name (get c))
      Batsched_numeric.Probe.fields
  in
  (* open-keyed counters, e.g. "delta_full_evals/<model>": fallback
     attribution per battery model *)
  let named =
    List.map
      (fun (name, v) -> Printf.sprintf "\"%s\": %d" (json_escape name) v)
      (Batsched_numeric.Probe.named_counts c)
  in
  let rate hits misses =
    let total = hits + misses in
    if total = 0 then "null"
    else Printf.sprintf "%.4f" (float_of_int hits /. float_of_int total)
  in
  let per words calls =
    if calls = 0 then "null"
    else Printf.sprintf "%.1f" (words /. float_of_int calls)
  in
  let derived =
    [ Printf.sprintf "\"fmemo_hit_rate\": %s"
        (rate c.Batsched_numeric.Probe.fmemo_hits
           c.Batsched_numeric.Probe.fmemo_misses);
      Printf.sprintf "\"contrib_hit_rate\": %s"
        (rate c.Batsched_numeric.Probe.contrib_hits
           c.Batsched_numeric.Probe.contrib_misses);
      Printf.sprintf "\"minor_words\": %.0f" row.minor_words;
      Printf.sprintf "\"major_words\": %.0f" row.major_words;
      Printf.sprintf "\"promoted_words\": %.0f" row.promoted_words;
      Printf.sprintf "\"words_per_choose\": %s"
        (per row.minor_words c.Batsched_numeric.Probe.choose_calls);
      Printf.sprintf "\"words_per_sigma\": %s"
        (per row.minor_words c.Batsched_numeric.Probe.sigma_evals) ]
  in
  "{" ^ String.concat ", " (fields @ named @ derived) ^ "}"

(* Provenance header: which commit produced the file and how wide the
   recommended pool is on this machine.  [git_rev] degrades to
   "unknown" outside a work tree (e.g. a distributed tarball). *)
let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

let write_json path rows profile =
  let oc =
    try open_out path
    with Sys_error msg ->
      Printf.eprintf "bench: cannot write %s (%s)\n%!" path msg;
      exit 2
  in
  Printf.fprintf oc "{\n  \"git_rev\": \"%s\",\n  \"pool_size\": %d,\n"
    (json_escape (git_rev ()))
    (Batsched_numeric.Pool.recommended ());
  output_string oc "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      let counters =
        match counters_for profile r.tname with
        | Some c -> Printf.sprintf ", \"counters\": %s" (json_counters c)
        | None -> ""
      in
      let rerun =
        match r.ns_first with
        | Some first -> Printf.sprintf ", \"ns_per_run_first\": %s"
                          (json_float first)
        | None -> ""
      in
      let low =
        if r.low_confidence then ", \"low_confidence\": true" else ""
      in
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s%s%s%s}%s\n"
        (json_escape r.tname) (json_float r.ns_per_run)
        (if Float.is_finite r.r_square then
           Printf.sprintf "%.4f" r.r_square
         else "null")
        rerun low counters
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %d rows to %s\n%!" (List.length rows) path

(* --flag VALUE extraction; order-insensitive, leaves the rest alone *)
let extract_opt flag args =
  let rec go acc = function
    | [ f ] when f = flag ->
        Printf.eprintf "bench: %s requires an output path\n%!" flag;
        exit 2
    | f :: value :: rest when f = flag -> (Some value, List.rev_append acc rest)
    | x :: rest -> go (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  go [] args

let extract_flag flag args =
  let rec go acc = function
    | f :: rest when f = flag -> (true, List.rev_append acc rest)
    | x :: rest -> go (x :: acc) rest
    | [] -> (false, List.rev acc)
  in
  go [] args

(* --compare OLD.json NEW.json [--normalize]: offline, no timing run.
   Exit 1 on a confident regression so CI can gate on it; low-confidence
   rows only warn. *)
let run_compare args =
  let normalize, args = extract_flag "--normalize" args in
  match args with
  | [ old_path; new_path ] ->
      let report =
        try Batsched_obs.Bench_compare.compare_files ~normalize old_path
              new_path
        with Sys_error msg | Failure msg ->
          Printf.eprintf "bench: --compare failed: %s\n%!" msg;
          exit 2
      in
      print_string (Batsched_obs.Bench_compare.to_string report);
      if Batsched_obs.Bench_compare.has_confident_regression report then begin
        Printf.eprintf "bench: confident regression detected\n%!";
        exit 1
      end
  | _ ->
      Printf.eprintf "usage: bench --compare OLD.json NEW.json [--normalize]\n%!";
      exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | "--compare" :: rest -> run_compare rest; exit 0
  | _ -> ());
  Batsched_obs.Log.init_from_env ();
  let json_out, args = extract_opt "--json" args in
  let trace_out, args = extract_opt "--trace" args in
  let metrics_out, args = extract_opt "--metrics" args in
  let ledger_out, args = extract_opt "--ledger" args in
  let stats, args = extract_flag "--stats" args in
  let stats = stats || Batsched_obs.Log.env_stats () in
  let metrics_out =
    match metrics_out with
    | Some _ -> metrics_out
    | None -> Batsched_obs.Log.env_opt "BATSCHED_METRICS"
  in
  let ledger_out =
    match ledger_out with
    | Some _ -> ledger_out
    | None -> Batsched_obs.Log.env_opt "BATSCHED_LEDGER"
  in
  let wall0 = Unix.gettimeofday () in
  if stats || trace_out <> None then obs := Batsched_obs.Sink.create ();
  if stats || metrics_out <> None then Batsched_obs.Histogram.enable ();
  (* fail on an unwritable --json target now, not after minutes of timing *)
  (match json_out with
  | Some path -> (
      try close_out (open_out_gen [ Open_append; Open_creat ] 0o644 path)
      with Sys_error msg ->
        Printf.eprintf "bench: cannot write %s (%s)\n%!" path msg;
        exit 2)
  | None -> ());
  let rows =
    match args with
    | [] ->
        run_reproductions [];
        print_newline ();
        Some (run_timing ())
    | [ "--smoke" ] ->
        run_smoke ();
        None
    | [ "tables" ] ->
        run_reproductions [];
        None
    | [ "timing" ] -> Some (run_timing ())
    | names ->
        run_reproductions names;
        None
  in
  (* report/trace before the work profile: work_profile resets counters *)
  if stats then begin
    print_newline ();
    print_string (Batsched_obs.Report.to_string !obs)
  end;
  (match trace_out with
  | Some out ->
      Batsched_obs.Trace.write !obs out;
      Printf.printf
        "wrote trace to %s (load it in chrome://tracing or ui.perfetto.dev)\n%!"
        out
  | None -> ());
  (match metrics_out with
  | Some out ->
      Batsched_obs.Openmetrics.write_file out;
      Printf.printf "wrote OpenMetrics exposition to %s\n%!" out
  | None -> ());
  (match (json_out, rows) with
  | Some path, Some rows -> write_json path rows (work_profile ())
  | _ -> ());
  match ledger_out with
  | None -> ()
  | Some dir -> (
      let mode = match args with [] -> "all" | parts -> String.concat "+" parts in
      let spec =
        { Batsched_obs.Ledger.tool = "bench";
          label = mode;
          instance = "";
          instance_hash = "";
          model = "";
          seed = 0;
          pool_size = Batsched_numeric.Pool.recommended ();
          knobs =
            [ ("mode", mode);
              ("scenarios", string_of_int (List.length scenarios));
              ("json", match json_out with Some p -> p | None -> "") ];
          wall_s = Unix.gettimeofday () -. wall0;
          sigma = None;
          finish = None;
          events_path = None;
          curve = [] }
      in
      match Batsched_obs.Ledger.record ~dir spec with
      | Ok id -> Printf.printf "ledger: recorded %s in %s\n%!" id dir
      | Error msg ->
          Printf.eprintf "bench: [warn] ledger write failed: %s\n%!" msg)
